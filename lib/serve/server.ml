(* The epicd serving core: a batching request loop over the Epic_exec
   domain pool, fronted by the persistent disk cache.

   Requests are read line by line.  Work requests accumulate in a batch
   while more input is immediately available (or until the batch cap);
   the batch then fans out across the pool and the responses are emitted
   in request order — so the response stream is byte-identical for every
   jobs value, exactly like the campaign CLIs.  Control requests (stats,
   shutdown) act as barriers: they flush the pending batch, then answer
   sequentially.

   Work results are served through {!Store.find_or_add} when a disk
   cache is attached: the cache key is {!Protocol.cache_key}, the cached
   value is the serialised result payload, and a hit splices those bytes
   verbatim into the response.  An in-memory {!Epic.Toolchain.Compile_cache}
   additionally deduplicates compiles inside one process (including
   between concurrent jobs of one batch). *)

module J = Epic.Profile.Json
module P = Protocol
module Diag = Epic.Diag

(* ------------------------------------------------------------------ *)
(* Bounded latency reservoir.

   A long-lived daemon must not grow a per-request latency list without
   bound.  The reservoir keeps a fixed-capacity sample: the first [cap]
   observations fill it, after which observation [n] replaces a slot
   with probability cap/(n+1) — algorithm R, except the "random" index
   is a pure integer mix of the observation count, so two daemons
   serving the same request stream keep identical samples.  Percentiles
   degrade gracefully from exact (below the cap) to sampled. *)

module Reservoir = struct
  type t = {
    cap : int;
    sample : float array;
    mutable n : int;               (* total observations, unbounded *)
  }

  let default_cap = 4096

  let create ?(cap = default_cap) () =
    if cap < 1 then invalid_arg "Reservoir.create: cap must be >= 1";
    { cap; sample = Array.make cap 0.; n = 0 }

  (* Splitmix-style finaliser: deterministic stand-in for randomness. *)
  let mix k =
    let z = ref ((k + 0x9e3779b9) land max_int) in
    z := (!z lxor (!z lsr 16)) * 0x21f0aaad land max_int;
    z := (!z lxor (!z lsr 15)) * 0x735a2d97 land max_int;
    (!z lxor (!z lsr 15)) land max_int

  let add t v =
    (if t.n < t.cap then t.sample.(t.n) <- v
     else
       let i = mix t.n mod (t.n + 1) in
       if i < t.cap then t.sample.(i) <- v);
    t.n <- t.n + 1

  let count t = t.n
  let cap t = t.cap
  let sampled t = min t.n t.cap
  let snapshot t = Array.sub t.sample 0 (sampled t)
end

(* ------------------------------------------------------------------ *)
(* Cross-client in-flight deduplication.

   The disk store already collapses {e repeated} requests; this table
   collapses {e concurrent} ones.  Keyed by {!Protocol.cache_key}: the
   first evaluator of a key (the leader) registers an entry, computes,
   resolves, and removes the entry; anyone who finds the entry in
   between waits for the leader's outcome and shares it — bytes
   identical, work done once.  The entry is removed {e before} waiters
   wake (they hold their own reference), so a key's table lifetime is
   exactly the leader's evaluation.

   Failures are shared too: a result payload is a deterministic
   function of the request, and so is the exception it raises instead —
   except for outcomes the [retry] predicate rejects (deadline misses:
   the leader's budget is its own policy, not a property of the
   request), where the waiter re-runs the protocol and typically
   becomes the next leader. *)

module Dedup = struct
  type outcome = D_ok of string * bool | D_exn of exn

  type entry = { mutable out : outcome option; cond : Condition.t }

  type t = { mu : Mutex.t; tbl : (string, entry) Hashtbl.t }

  let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

  (* [run t ~retry ~on_hit key f] returns [(payload, disk, shared)];
     [on_hit] fires once per response actually shared from a leader. *)
  let rec run t ~retry ~on_hit key (f : unit -> string * bool) =
    Mutex.lock t.mu;
    match Hashtbl.find_opt t.tbl key with
    | None ->
      let e = { out = None; cond = Condition.create () } in
      Hashtbl.add t.tbl key e;
      Mutex.unlock t.mu;
      let o = (match f () with p, d -> D_ok (p, d) | exception x -> D_exn x) in
      Mutex.lock t.mu;
      e.out <- Some o;
      Hashtbl.remove t.tbl key;
      Condition.broadcast e.cond;
      Mutex.unlock t.mu;
      (match o with D_ok (p, d) -> (p, d, false) | D_exn x -> raise x)
    | Some e ->
      let rec await () =
        match e.out with
        | None ->
          Condition.wait e.cond t.mu;
          await ()
        | Some o -> o
      in
      let o = await () in
      Mutex.unlock t.mu;
      (match o with
       | D_ok (p, _disk) ->
         (* Shared, not read from disk by {e this} request: the disk
            flag stays with the leader so stats don't double-count. *)
         on_hit ();
         (p, false, true)
       | D_exn x when retry x -> run t ~retry ~on_hit key f
       | D_exn x ->
         on_hit ();
         raise x)
end

type t = {
  jobs : int;
  batch_max : int;
  queue_max : int;            (* admission high-water mark: shed beyond *)
  deadline_ms : int option;   (* server default per-request deadline *)
  deadline_cycles_per_ms : int;
      (* fuel budget implied by one wall millisecond of deadline — a
         conservative host-independent constant, NOT the live sim-rate
         probe, so whether a run is capped never depends on the machine *)
  store : Store.t option;
  cache : Epic.Toolchain.Compile_cache.t;
  pre_cache : Epic.Sim.Predecode.t Epic.Exec.Cache.t;
      (* raw-asm simulate requests: config fingerprint x image digest ->
         predecode (compile-based ops reuse the one in the artifacts) *)
  sim_rate : Epic.Experiments.sim_rate Lazy.t;
      (* host throughput probe: ~0.25s, forced on the first stats
         request (the control path is sequential, so forcing is safe) *)
  t_start : float;
  stat_mu : Mutex.t;
      (* guards every mutable counter below plus the latency reservoir —
         in concurrent socket mode they are touched from every reader
         thread and every pool worker *)
  probe_mu : Mutex.t;
      (* serialises forcing the sim_rate probe: [Lazy.force] is not
         safe to race, and concurrent stats requests would *)
  dedup : Dedup.t;
  mutable n_ok : int;
  mutable n_err : int;
  mutable n_disk_served : int;      (* ok responses spliced from disk *)
  mutable n_admitted : int;         (* work requests accepted for service *)
  mutable n_shed : int;             (* work requests rejected on overload *)
  mutable n_deadline : int;         (* requests that missed their deadline *)
  mutable n_dedup : int;            (* responses shared from an in-flight twin *)
  mutable n_fanout : int;           (* requests granted intra-request jobs > 1 *)
  mutable outstanding : int;        (* work dispatched but not yet completed *)
  mutable op_counts : (string * int) list;
  lat : Reservoir.t;                (* per work request, service+wait, bounded *)
  mutable q_max : int;              (* deepest batch / in-flight depth seen *)
  mutable batches : int;
}

let create ?(jobs = Epic.Exec.default_jobs ()) ?(batch_max = 64)
    ?(queue_max = 256) ?deadline_ms ?(deadline_cycles_per_ms = 10_000) ?store
    () =
  if jobs < 1 then invalid_arg "Epic_serve.Server.create: jobs must be >= 1";
  if batch_max < 1 then
    invalid_arg "Epic_serve.Server.create: batch_max must be >= 1";
  if queue_max < 1 then
    invalid_arg "Epic_serve.Server.create: queue_max must be >= 1";
  (match deadline_ms with
   | Some ms when ms < 0 ->
     invalid_arg "Epic_serve.Server.create: deadline_ms must be >= 0"
   | _ -> ());
  if deadline_cycles_per_ms < 1 then
    invalid_arg "Epic_serve.Server.create: deadline_cycles_per_ms must be >= 1";
  { jobs; batch_max; queue_max; deadline_ms; deadline_cycles_per_ms; store;
    cache = Epic.Toolchain.Compile_cache.create ();
    pre_cache = Epic.Exec.Cache.create ~name:"predecode" ();
    sim_rate = lazy (Epic.Experiments.sim_rate ());
    t_start = Epic.Exec.now ();
    stat_mu = Mutex.create (); probe_mu = Mutex.create ();
    dedup = Dedup.create ();
    n_ok = 0; n_err = 0; n_disk_served = 0;
    n_admitted = 0; n_shed = 0; n_deadline = 0; n_dedup = 0; n_fanout = 0;
    outstanding = 0;
    op_counts = []; lat = Reservoir.create (); q_max = 0; batches = 0 }

let store t = t.store

let locked t f =
  Mutex.lock t.stat_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.stat_mu) f

(* ------------------------------------------------------------------ *)
(* Deadlines.

   A work request's deadline is the client's [deadline_ms] if given,
   else the server default; [None] means unbounded.  Enforcement has
   three layers, none of which can leave a wall-clock value in a
   response (responses stay byte-deterministic):

   1. a wall-clock check when the request is dispatched to a pool
      domain — a request that spent its whole budget queueing is
      answered [serve/deadline] without doing any work;
   2. a fuel cap on simulations: the deadline converts to a cycle
      budget ([deadline_cycles_per_ms] per millisecond, a fixed
      conservative constant) and a run that traps on fuel it would not
      otherwise have been given is reported as [serve/deadline] — and
      crucially never written to the cache, since the cap is a policy
      choice, not part of the result;
   3. wall-clock checks between the points of multi-point requests
      (explore-slice), the "between batch items" granularity.

   Timed-out requests get an error response like any other failure; the
   rest of the batch is unaffected. *)

exception Deadline_exceeded of int  (* the deadline, in ms *)

let deadline_diag ms =
  Diag.v ~code:"serve/deadline"
    ~context:[ ("deadline_ms", string_of_int ms) ]
    (Printf.sprintf "request exceeded its %d ms deadline" ms)

type dl = {
  dl_ms : int option;        (* effective deadline *)
  dl_expires : float option; (* absolute wall-clock expiry *)
}

let no_deadline = { dl_ms = None; dl_expires = None }

let deadline_of t ~enq (req_ms : int option) =
  match (match req_ms with Some _ -> req_ms | None -> t.deadline_ms) with
  | None -> no_deadline
  | Some ms ->
    { dl_ms = Some ms; dl_expires = Some (enq +. (float_of_int ms /. 1e3)) }

let check_deadline dl =
  match dl with
  | { dl_ms = Some ms; dl_expires = Some e } when Epic.Exec.now () >= e ->
    raise (Deadline_exceeded ms)
  | _ -> ()

(* Run a simulation under the deadline's fuel budget.  If the caller's
   own fuel (or the simulator default) is already tighter than the
   deadline's cycle budget, the run is untouched — its fuel trap, if
   any, is a legitimate, cacheable result.  Only when the deadline
   tightens the budget does a fuel trap mean "deadline exceeded". *)
let run_fueled t dl ~user_fuel (run : int option -> Epic.Sim.result) =
  match dl.dl_ms with
  | None -> run user_fuel
  | Some ms ->
    let cap = ms * t.deadline_cycles_per_ms in
    let own = match user_fuel with Some f -> f | None -> Epic.Sim.default_fuel in
    if own <= cap then run user_fuel
    else
      let r = run (Some cap) in
      (match r.Epic.Sim.trap with
       | Some { Epic.Sim.tr_cause = Epic.Sim.T_fuel; _ } ->
         raise (Deadline_exceeded ms)
       | _ -> r)

(* ------------------------------------------------------------------ *)
(* Result payload builders: deterministic functions of the request —
   never include wall time, cache state or anything machine-dependent,
   so the serialised payload is cacheable and replays byte-identically. *)

let json_of_trap = function
  | None -> J.Null
  | Some (tr : Epic.Sim.trap) ->
    J.Str (Epic.Sim.string_of_trap_cause tr.Epic.Sim.tr_cause)

let entry_of (image : Epic.Asm.Aunit.image) =
  match List.assoc_opt "_start" image.Epic.Asm.Aunit.im_symbols with
  | Some e -> e
  | None -> 0

let compile_result t dl (c : P.compile_req) =
  let source = P.resolve_source c.P.c_source in
  let a =
    Epic.Toolchain.compile_epic ~opt:c.P.c_opt ~predication:c.P.c_predication
      ~unroll:c.P.c_unroll ~cache:t.cache c.P.c_config ~source ()
  in
  check_deadline dl;
  let r =
    run_fueled t dl ~user_fuel:c.P.c_fuel (fun fuel ->
        Epic.Toolchain.run_epic ?fuel a)
  in
  let area = Epic.Area.estimate c.P.c_config in
  J.Obj
    [ ("ret", J.Int r.Epic.Sim.ret);
      ("trap", json_of_trap r.Epic.Sim.trap);
      ("stats", Epic.Profile.stats_to_json r.Epic.Sim.stats);
      ( "sched",
        J.Obj
          [ ("blocks", J.Int a.Epic.Toolchain.ea_sched.Epic.Sched.Sched.st_blocks);
            ("insts", J.Int a.Epic.Toolchain.ea_sched.Epic.Sched.Sched.st_insts);
            ("bundles", J.Int a.Epic.Toolchain.ea_sched.Epic.Sched.Sched.st_bundles)
          ] );
      ("slices", J.Int area.Epic.Area.slices);
      ("clock_mhz", J.Float area.Epic.Area.clock_mhz) ]

let simulate_result t dl (s : P.simulate_req) =
  if s.P.s_mem_bytes <= 0 then
    Diag.raisef ~code:"serve/request" "simulate: mem_bytes must be positive";
  let image, _words = Epic.Asm.assemble_text s.P.s_config s.P.s_asm in
  (* One predecode per (config x instruction stream), shared across the
     whole batch stream — a re-submitted scenario skips decode entirely. *)
  let key =
    Epic.Config.fingerprint s.P.s_config ^ "|"
    ^ Epic.Sim.Predecode.image_digest image
  in
  let pre =
    Epic.Exec.Cache.find_or_add t.pre_cache key (fun () ->
        Epic.Sim.Predecode.of_image s.P.s_config image)
  in
  let mem = Bytes.make s.P.s_mem_bytes '\000' in
  let r =
    run_fueled t dl ~user_fuel:s.P.s_fuel (fun fuel ->
        Epic.Sim.run ?fuel ~pre s.P.s_config ~image ~mem
          ~entry:(entry_of image) ())
  in
  J.Obj
    [ ("ret", J.Int r.Epic.Sim.ret);
      ("trap", json_of_trap r.Epic.Sim.trap);
      ("stats", Epic.Profile.stats_to_json r.Epic.Sim.stats) ]

let fault_result t ~jobs (f : P.fault_req) =
  let source = P.resolve_source f.P.fc_source in
  let a =
    Epic.Toolchain.compile_epic ~cache:t.cache f.P.fc_config ~source ()
  in
  let rp =
    Epic.Toolchain.fault_campaign ~jobs ~seed:f.P.fc_seed ~runs:f.P.fc_runs
      ~targets:f.P.fc_targets ~fuel_factor:f.P.fc_fuel_factor a
  in
  Epic.Fault.report_to_json rp

let fuzz_result ~jobs (f : P.fuzz_req) =
  let r =
    Epic.Difftest.fuzz ~jobs ~shrink:f.P.fz_shrink ~kinds:f.P.fz_kinds
      ~seed:f.P.fz_seed ~cases:f.P.fz_cases ()
  in
  J.Obj
    [ ("cases", J.Int r.Epic.Difftest.r_cases);
      ("mir", J.Int r.Epic.Difftest.r_mir);
      ("asm", J.Int r.Epic.Difftest.r_asm);
      ("enc", J.Int r.Epic.Difftest.r_enc);
      ( "findings",
        J.List
          (List.map
             (fun (f : Epic.Difftest.finding) ->
               J.Obj
                 [ ("case", J.Int f.Epic.Difftest.f_case);
                   ( "kind",
                     J.Str (Epic.Difftest.string_of_kind f.Epic.Difftest.f_kind)
                   );
                   ("class", J.Str f.Epic.Difftest.f_class);
                   ("engine", J.Str f.Epic.Difftest.f_engine);
                   ("detail", J.Str f.Epic.Difftest.f_detail) ])
             r.Epic.Difftest.r_findings) ) ]

let explore_result t dl (e : P.explore_req) =
  let source = P.resolve_source e.P.ex_source in
  let points =
    List.concat_map
      (fun issue ->
        List.map
          (fun alus ->
            (* The between-items deadline check of a multi-point
               request: an expired slice stops before its next point. *)
            check_deadline dl;
            let cfg =
              { Epic.Config.default with Epic.Config.n_alus = alus;
                issue_width = issue }
            in
            match Epic.Config.validate cfg with
            | Error ds ->
              J.Obj
                [ ("alus", J.Int alus); ("issue", J.Int issue);
                  ("invalid", J.Str (Diag.to_string_list ds)) ]
            | Ok () ->
              let a = Epic.Toolchain.compile_epic ~cache:t.cache cfg ~source () in
              let r = Epic.Toolchain.run_epic a in
              let area = Epic.Area.estimate cfg in
              let cycles = r.Epic.Sim.stats.Epic.Sim.cycles in
              J.Obj
                [ ("alus", J.Int alus); ("issue", J.Int issue);
                  ("cycles", J.Int cycles);
                  ("slices", J.Int area.Epic.Area.slices);
                  ("brams", J.Int area.Epic.Area.brams);
                  ("clock_mhz", J.Float area.Epic.Area.clock_mhz);
                  ( "millis",
                    J.Float
                      (float_of_int cycles /. (area.Epic.Area.clock_mhz *. 1e3))
                  ) ])
          e.P.ex_alus)
      e.P.ex_issues
  in
  J.Obj [ ("points", J.List points) ]

(* Adaptive intra-request fan-out.  Fault campaigns and fuzz batches are
   internally parallel and documented byte-identical for any jobs value
   (pre-drawn PRNG streams) — so when such a request is effectively
   alone (nothing else in flight), serialising it inside the batch
   wastes the whole pool.  The policy: alone on a multi-job server, the
   request gets the full pool; under load it runs on one domain and
   request-level parallelism does the work.  The decision is taken at
   production time, so a cached or deduplicated response never pays it,
   and either way the bytes match. *)
let intra_jobs t (op : P.op) =
  match op with
  | (P.Fault_campaign _ | P.Fuzz_batch _) when t.jobs > 1 ->
    if locked t (fun () -> t.outstanding) <= 1 then t.jobs else 1
  | _ -> 1

let work_payload t dl ~jobs (op : P.op) =
  let j =
    match op with
    | P.Compile c -> compile_result t dl c
    | P.Simulate s -> simulate_result t dl s
    | P.Fault_campaign f -> fault_result t ~jobs f
    | P.Fuzz_batch f -> fuzz_result ~jobs f
    | P.Explore_slice e -> explore_result t dl e
    | P.Stats | P.Shutdown -> assert false
  in
  J.to_string j

(* Every toolchain failure a bad request can provoke, rendered as a
   structured diagnostic for the error response.  The catch-all matters:
   a long-running daemon answers what it cannot serve; it never dies on
   one request. *)
let diag_of_exn = function
  | Diag.Error d -> Some d
  | Epic.Asm.Asm_error d | Epic.Encoding.Encode_error d | Epic.Sim.Sim_error d ->
    Some d
  | Epic.Cfront.Error m -> Some (Diag.v ~code:"serve/compile" m)
  | Epic.Opt.Pipeline.Error m -> Some (Diag.v ~code:"serve/pipeline" m)
  | Epic.Sched.Codegen.Codegen_error m -> Some (Diag.v ~code:"serve/codegen" m)
  | Failure m -> Some (Diag.v ~code:"serve/failure" m)
  | Invalid_argument m -> Some (Diag.v ~code:"serve/invalid" m)
  | P.Bad d -> Some d
  | (Stack_overflow | Out_of_memory | Assert_failure _) as e -> raise e
  | e -> Some (Diag.v ~code:"serve/op" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Batch evaluation *)

type queued = {
  qu_line_no : int;                           (* for unparseable requests *)
  qu_req : (P.request, Diag.t) result;
  qu_enq : float;
  qu_dl : dl;                                 (* resolved deadline *)
}

type evaluated = {
  ev_line : string;   (* complete response line *)
  ev_op : string;
  ev_ok : bool;
  ev_disk : bool;
  ev_dedup : bool;    (* shared from a concurrent identical request *)
  ev_fanout : bool;   (* produced with intra-request jobs > 1 *)
  ev_deadline : bool; (* the error was a missed deadline *)
  ev_ms : float;
}

let eval t (q : queued) : evaluated =
  let finish ?(deadline = false) ?(dedup = false) ?(fanout = false) ~op ~ok
      ~disk line =
    { ev_line = line; ev_op = op; ev_ok = ok; ev_disk = disk;
      ev_dedup = dedup; ev_fanout = fanout; ev_deadline = deadline;
      ev_ms = (Epic.Exec.now () -. q.qu_enq) *. 1e3 }
  in
  match q.qu_req with
  | Error d ->
    finish ~op:"invalid" ~ok:false ~disk:false (P.error_response ~id:None d)
  | Ok { P.rq_id = id; rq_op = op; _ } ->
    let opn = P.op_name op in
    let fanned = ref false in
    (* The fan-out decision happens only when the payload is actually
       produced — a disk hit or a dedup share never records one. *)
    let produce () =
      let jobs = intra_jobs t op in
      if jobs > 1 then begin
        fanned := true;
        locked t (fun () -> t.n_fanout <- t.n_fanout + 1)
      end;
      work_payload t q.qu_dl ~jobs op
    in
    let produce_stored () =
      match (t.store, P.cache_key op) with
      | Some st, Some key -> Store.find_or_add st ~key produce
      | _ -> (produce (), false)
    in
    (match
       (* The dispatch-time wall-clock check: a request whose whole
          budget was spent queueing is answered without doing work.  A
          timed-out computation is never cached — [find_or_add]'s
          producer raising leaves no entry behind. *)
       check_deadline q.qu_dl;
       match P.cache_key op with
       | Some key ->
         Dedup.run t.dedup
           ~retry:(function Deadline_exceeded _ -> true | _ -> false)
           ~on_hit:(fun () -> locked t (fun () -> t.n_dedup <- t.n_dedup + 1))
           key produce_stored
       | None ->
         let payload, disk = produce_stored () in
         (payload, disk, false)
     with
     | payload, disk, dedup ->
       finish ~op:opn ~ok:true ~disk ~dedup ~fanout:!fanned
         (P.ok_response ~id ~result:payload)
     | exception Deadline_exceeded ms ->
       finish ~op:opn ~ok:false ~disk:false ~deadline:true
         (P.error_response ~id (deadline_diag ms))
     | exception e ->
       (match diag_of_exn e with
        | Some d -> finish ~op:opn ~ok:false ~disk:false (P.error_response ~id d)
        | None -> raise e))

(* Callers hold [stat_mu]. *)
let bump_counter t op =
  t.op_counts <-
    (match List.assoc_opt op t.op_counts with
     | None -> (op, 1) :: t.op_counts
     | Some n -> (op, n + 1) :: List.remove_assoc op t.op_counts)

let bump t op = locked t (fun () -> bump_counter t op)

let record t (e : evaluated) =
  locked t (fun () ->
      if e.ev_ok then t.n_ok <- t.n_ok + 1 else t.n_err <- t.n_err + 1;
      if e.ev_disk then t.n_disk_served <- t.n_disk_served + 1;
      if e.ev_deadline then t.n_deadline <- t.n_deadline + 1;
      (* dedup / fan-out are counted at evaluation time, where they are
         decided — [ev_dedup]/[ev_fanout] exist for the transcript. *)
      bump_counter t e.ev_op;
      Reservoir.add t.lat e.ev_ms)

let flush_batch t emit = function
  | [] -> ()
  | queue ->
    let arr = Array.of_list (List.rev queue) in
    let n = Array.length arr in
    locked t (fun () ->
        t.q_max <- max t.q_max n;
        t.batches <- t.batches + 1;
        t.outstanding <- t.outstanding + n);
    let results =
      Epic.Exec.Pool.run ~jobs:t.jobs n (fun i ->
          let e = eval t arr.(i) in
          (* Completion feeds the fan-out policy: once the rest of the
             batch drains, a late fault/fuzz item may still get the
             pool. *)
          locked t (fun () -> t.outstanding <- t.outstanding - 1);
          e)
    in
    Array.iter
      (fun e ->
        record t e;
        emit e.ev_line)
      results

(* ------------------------------------------------------------------ *)
(* Statistics *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))

(* Percentiles come from the bounded reservoir: exact below the cap,
   sampled beyond it; [count] stays the true total so throughput math is
   unaffected, and [sampled]/[reservoir_cap] make the bound visible. *)
let latency_json t =
  let sorted = Reservoir.snapshot t.lat in
  Array.sort compare sorted;
  J.Obj
    [ ("count", J.Int (Reservoir.count t.lat));
      ("sampled", J.Int (Reservoir.sampled t.lat));
      ("reservoir_cap", J.Int (Reservoir.cap t.lat));
      ("p50_ms", J.Float (percentile sorted 50.));
      ("p95_ms", J.Float (percentile sorted 95.));
      ("p99_ms", J.Float (percentile sorted 99.));
      ("max_ms", J.Float (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1))) ]

(* The ~0.25s throughput probe is forced outside [stat_mu] (workers must
   not stall on a stats request) but under its own lock: concurrent
   stats requests racing [Lazy.force] would be undefined behaviour. *)
let sim_rate_json t =
  Mutex.lock t.probe_mu;
  let r = (try Ok (Lazy.force t.sim_rate) with e -> Error e) in
  Mutex.unlock t.probe_mu;
  match r with
  | Ok v -> Epic.Experiments.sim_rate_to_json v
  | Error e -> raise e

let stats_json t =
  let sim_rate = sim_rate_json t in
  locked t @@ fun () ->
  J.Obj
    [ ("uptime_s", J.Float (Epic.Exec.now () -. t.t_start));
      ("jobs", J.Int t.jobs);
      ("served", J.Int (t.n_ok + t.n_err));
      ("ok", J.Int t.n_ok);
      ("errors", J.Int t.n_err);
      ("ops", J.Obj (List.rev_map (fun (k, n) -> (k, J.Int n)) t.op_counts));
      ("latency", latency_json t);
      ("batches", J.Int t.batches);
      ("queue_depth_max", J.Int t.q_max);
      ("queue_max", J.Int t.queue_max);
      ("admitted", J.Int t.n_admitted);
      ("shed", J.Int t.n_shed);
      ("in_flight", J.Int t.outstanding);
      ("dedup_hits", J.Int t.n_dedup);
      ("intra_fanout", J.Int t.n_fanout);
      ("deadline_timeouts", J.Int t.n_deadline);
      ( "deadline_ms",
        match t.deadline_ms with None -> J.Null | Some ms -> J.Int ms );
      ("disk_served", J.Int t.n_disk_served);
      ("sim_rate", sim_rate);
      ( "predecode_cache",
        Epic.Exec.Cache.stats_to_json (Epic.Exec.Cache.stats t.pre_cache) );
      ( "disk_cache",
        match t.store with None -> J.Null | Some st -> Store.stats_to_json st );
      ( "compile_cache",
        J.Obj
          (List.map
             (fun (name, s) -> (name, Epic.Exec.Cache.stats_to_json s))
             (Epic.Toolchain.Compile_cache.stats t.cache)) ) ]

let summary_json = stats_json

(* ------------------------------------------------------------------ *)
(* Serve loop over an abstract line transport *)

type io = {
  next_line : unit -> string option;  (* blocking; None = end of input *)
  pending : unit -> bool;     (* more input available without blocking? *)
  emit : string -> unit;              (* send one response line *)
}

type stop = Eof | Shutdown_requested

let overload_diag t ~depth =
  Diag.v ~code:"serve/overload"
    ~context:
      [ ("queue_depth", string_of_int depth);
        ("queue_max", string_of_int t.queue_max) ]
    (Printf.sprintf
       "admission queue full (%d queued, high-water mark %d); back off and \
        retry"
       depth t.queue_max)

let serve t io : stop =
  let emit line = io.emit line in
  let rec loop queue depth =
    match io.next_line () with
    | None ->
      flush_batch t emit queue;
      Eof
    | Some line ->
      let enq = Epic.Exec.now () in
      let req = P.request_of_line line in
      (match req with
       | Ok { P.rq_id = id; rq_op = P.Stats; _ } ->
         flush_batch t emit queue;
         bump t "stats";
         emit (P.ok_response ~id ~result:(J.to_string (stats_json t)));
         loop [] 0
       | Ok { P.rq_id = id; rq_op = P.Shutdown; _ } ->
         flush_batch t emit queue;
         bump t "shutdown";
         emit (P.ok_response ~id ~result:(J.to_string (summary_json t)));
         Shutdown_requested
       | _ when depth >= t.queue_max ->
         (* Overload shedding: above the high-water mark every new work
            request (or unparseable line) is rejected {e immediately} —
            ahead of the queued work, out of request order, which is
            why responses carry ids — so a client learns to back off in
            microseconds instead of waiting behind the queue it is
            trying to add to. *)
         locked t (fun () ->
             t.n_shed <- t.n_shed + 1;
             bump_counter t "shed");
         let id = match req with Ok r -> r.P.rq_id | Error _ -> None in
         emit (P.error_response ~id (overload_diag t ~depth));
         loop queue depth
       | _ ->
         locked t (fun () -> t.n_admitted <- t.n_admitted + 1);
         let dl =
           deadline_of t ~enq
             (match req with
              | Ok r -> r.P.rq_deadline_ms
              | Error _ -> None)
         in
         let queue =
           { qu_line_no = depth; qu_req = req; qu_enq = enq; qu_dl = dl }
           :: queue
         in
         let depth = depth + 1 in
         if depth >= t.batch_max || not (io.pending ()) then begin
           flush_batch t emit queue;
           loop [] 0
         end
         else loop queue depth)
  in
  loop [] 0

(* In-memory transport: the whole request list is one pending stream, so
   batching (up to [batch_max]) and control barriers behave exactly as
   they do on a pipe under load.  Used by the tests and epicload's
   in-process mode. *)
let serve_strings t lines =
  let rem = ref lines in
  let out = ref [] in
  let io =
    { next_line =
        (fun () ->
          match !rem with [] -> None | x :: r -> rem := r; Some x);
      pending = (fun () -> !rem <> []);
      emit = (fun s -> out := s :: !out) }
  in
  ignore (serve t io);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Pipe / socket transports.

   The reader works on the raw file descriptor with its own buffer, so
   "is more input pending?" is answerable: a buffered newline, or the
   descriptor selecting readable.  (A stdlib in_channel would read
   ahead invisibly and defeat the batching heuristic.) *)

module Line_reader = struct
  type r = {
    fd : Unix.file_descr;
    chunk : Bytes.t;
    mutable buf : Buffer.t;
    mutable eof : bool;
    max_line : int;
    mutable over : string option;
        (* Some prefix: the current line blew past [max_line]; the
           prefix (max_line + 1 bytes, enough for the serve/oversized
           verdict) is retained and everything else is discarded until
           the terminating newline.  Bounds memory at ~max_line + one
           chunk no matter what a client streams at us. *)
  }

  let create ?(max_line = P.max_line_bytes) fd =
    { fd; chunk = Bytes.create 65536; buf = Buffer.create 65536; eof = false;
      max_line; over = None }

  let refill r =
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 -> r.eof <- true
    | n -> Buffer.add_subbytes r.buf r.chunk 0 n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

  let take_line r =
    let s = Buffer.contents r.buf in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      r.buf <- Buffer.create 65536;
      Buffer.add_string r.buf (String.sub s (i + 1) (String.length s - i - 1));
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | None -> None

  (* In discard mode: drop buffered bytes up to (and including) the next
     newline; returns true once the oversized line has ended. *)
  let drop_to_newline r =
    let s = Buffer.contents r.buf in
    match String.index_opt s '\n' with
    | Some i ->
      r.buf <- Buffer.create 65536;
      Buffer.add_string r.buf (String.sub s (i + 1) (String.length s - i - 1));
      true
    | None ->
      Buffer.clear r.buf;
      false

  let rec next_line r =
    match r.over with
    | Some prefix ->
      if drop_to_newline r then begin r.over <- None; Some prefix end
      else if r.eof then begin r.over <- None; Some prefix end
      else begin refill r; next_line r end
    | None ->
      (match take_line r with
       | Some line -> Some line
       | None ->
         if Buffer.length r.buf > r.max_line then begin
           (* The line is already over the frame limit; keep just enough
              bytes to prove it and shed the rest as it streams in. *)
           r.over <-
             Some (String.sub (Buffer.contents r.buf) 0 (r.max_line + 1));
           Buffer.clear r.buf;
           next_line r
         end
         else if r.eof then
           if Buffer.length r.buf > 0 then begin
             let line = Buffer.contents r.buf in
             Buffer.clear r.buf;
             Some line
           end
           else None
         else begin
           refill r;
           next_line r
         end)

  (* A complete buffered line, or bytes already readable on the fd:
     either way the serve loop should keep queueing before it flushes. *)
  let pending r =
    (not r.eof)
    && (String.contains (Buffer.contents r.buf) '\n'
        ||
        match Unix.select [ r.fd ] [] [] 0.0 with
        | [ _ ], _, _ -> true
        | _ -> false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false)
end

let io_of_fd in_fd oc =
  let r = Line_reader.create in_fd in
  { next_line = (fun () -> Line_reader.next_line r);
    pending = (fun () -> Line_reader.pending r);
    emit =
      (fun s ->
        output_string oc s;
        output_char oc '\n';
        flush oc) }

let run_pipe t ~in_fd ~out : stop = serve t (io_of_fd in_fd out)

(* ------------------------------------------------------------------ *)
(* Concurrent serving: one reader per connection over a shared pool.

   [serve] batches because it owns the whole pool for one client.  With
   many clients the pool must be shared, so the unit of dispatch shrinks
   from "batch" to "request": each admitted request gets a completion
   cell (FIFO per connection) and a task on the shared {!Epic.Exec.Workq};
   responses are emitted strictly in cell order, which keeps a
   connection's response stream byte-identical to sequential mode for
   any [--jobs] (shedding aside — admission compares the {e global}
   in-flight count against [queue_max], since the queue being protected
   is the shared one).  Control requests flush only their own
   connection's in-flight work, then answer inline; cross-client
   coincidences of the same request are collapsed by the dedup table
   inside [eval]. *)

type cell = { mutable c_out : (evaluated, exn) result option }

let serve_shared t ~(pool : Epic.Exec.Workq.t) io : stop =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let inflight : cell Queue.t = Queue.create () in
  let await cell =
    Mutex.lock mu;
    while cell.c_out = None do
      Condition.wait cond mu
    done;
    let r = Option.get cell.c_out in
    Mutex.unlock mu;
    r
  in
  let flush () =
    while not (Queue.is_empty inflight) do
      match await (Queue.pop inflight) with
      | Ok e ->
        record t e;
        io.emit e.ev_line
      | Error x -> raise x
    done
  in
  let submit q =
    let cell = { c_out = None } in
    Queue.push cell inflight;
    Epic.Exec.Workq.submit pool (fun () ->
        let r = (match eval t q with e -> Ok e | exception x -> Error x) in
        locked t (fun () -> t.outstanding <- t.outstanding - 1);
        Mutex.lock mu;
        cell.c_out <- Some r;
        Condition.broadcast cond;
        Mutex.unlock mu)
  in
  let rec loop () =
    match io.next_line () with
    | None ->
      flush ();
      Eof
    | Some line ->
      let enq = Epic.Exec.now () in
      let req = P.request_of_line line in
      (match req with
       | Ok { P.rq_id = id; rq_op = P.Stats; _ } ->
         flush ();
         bump t "stats";
         io.emit (P.ok_response ~id ~result:(J.to_string (stats_json t)));
         loop ()
       | Ok { P.rq_id = id; rq_op = P.Shutdown; _ } ->
         flush ();
         bump t "shutdown";
         io.emit (P.ok_response ~id ~result:(J.to_string (summary_json t)));
         Shutdown_requested
       | _ ->
         let depth = locked t (fun () -> t.outstanding) in
         if depth >= t.queue_max then begin
           locked t (fun () ->
               t.n_shed <- t.n_shed + 1;
               bump_counter t "shed");
           let id = match req with Ok r -> r.P.rq_id | Error _ -> None in
           io.emit (P.error_response ~id (overload_diag t ~depth));
           loop ()
         end
         else begin
           locked t (fun () ->
               t.n_admitted <- t.n_admitted + 1;
               t.outstanding <- t.outstanding + 1;
               t.q_max <- max t.q_max t.outstanding);
           let dl =
             deadline_of t ~enq
               (match req with
                | Ok r -> r.P.rq_deadline_ms
                | Error _ -> None)
           in
           submit { qu_line_no = 0; qu_req = req; qu_enq = enq; qu_dl = dl };
           if Queue.length inflight >= t.batch_max || not (io.pending ()) then
             flush ();
           loop ()
         end)
  in
  loop ()

(* Acceptor for multi-connection mode.  The accept loop polls with a
   short select timeout so it notices the stop flag; each connection
   runs its reader on a systhread (cheap blocking I/O — the heavy work
   lives on the pool's domains).  Shutdown drain: the connection that
   received the shutdown request answers it, then EOFs every peer's
   read side ([SHUTDOWN_RECEIVE] wakes a blocked read); peers flush
   their queued work — every admitted request is still answered — and
   exit on end-of-input.  In this mode a non-I/O exception costs the
   connection, never the daemon. *)
let run_socket_concurrent t ~sock ~max_conns : stop =
  let pool = Epic.Exec.Workq.create ~jobs:t.jobs () in
  let reg_mu = Mutex.create () in
  let conns : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 16 in
  let stop_flag = ref false in
  let next_id = ref 0 in
  let threads : Thread.t list ref = ref [] in
  let with_reg f =
    Mutex.lock reg_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock reg_mu) f
  in
  let eof_peers_locked () =
    Hashtbl.iter
      (fun _ fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error (_, _, _) -> ())
      conns
  in
  let handle cid conn =
    let oc = Unix.out_channel_of_descr conn in
    let stop =
      match serve_shared t ~pool (io_of_fd conn oc) with
      | stop -> stop
      | exception
          (( Unix.Unix_error
               ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN
                 | Unix.ETIMEDOUT ),
                 _, _ )
           | Sys_error _ ) as e) ->
        Printf.eprintf "epicd: dropping client after connection error: %s\n%!"
          (Printexc.to_string e);
        Eof
      | exception e ->
        Printf.eprintf "epicd: dropping client after handler error: %s\n%!"
          (Printexc.to_string e);
        Eof
    in
    (try flush oc with Sys_error _ -> ());
    with_reg (fun () ->
        Hashtbl.remove conns cid;
        match stop with
        | Shutdown_requested ->
          stop_flag := true;
          eof_peers_locked ()
        | Eof -> ());
    try Unix.close conn with Unix.Unix_error (_, _, _) -> ()
  in
  let stopping () = with_reg (fun () -> !stop_flag) in
  let rec accept_loop () =
    if stopping () then ()
    else if with_reg (fun () -> Hashtbl.length conns) >= max_conns then begin
      (* At capacity: let dial-ins wait in the listen backlog. *)
      Unix.sleepf 0.02;
      accept_loop ()
    end
    else
      match Unix.select [ sock ] [] [] 0.05 with
      | [], _, _ -> accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | _ ->
        (match Unix.accept sock with
         | conn, _ ->
           incr next_id;
           let cid = !next_id in
           with_reg (fun () -> Hashtbl.replace conns cid conn);
           threads := Thread.create (handle cid) conn :: !threads;
           accept_loop ()
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ())
  in
  accept_loop ();
  (* A connection accepted in the same instant the stop flag was set
     missed the peer drain above — EOF it here before joining. *)
  with_reg eof_peers_locked;
  List.iter Thread.join !threads;
  Epic.Exec.Workq.shutdown pool;
  Shutdown_requested

(* Unix-socket mode.  With [max_conns = 1] (the default) connections
   are accepted strictly one at a time and each is served by the
   batching [serve] loop, exactly as before; with [max_conns > 1] up to
   that many connections are served concurrently over one shared worker
   pool ([run_socket_concurrent]).  A shutdown request stops the daemon
   after answering.

   A broken client must not take the daemon down with it: SIGPIPE is
   ignored for the process (a write to a dead peer then surfaces as
   EPIPE / [Sys_error] instead of a fatal signal), and any connection
   error — the peer resetting mid-request, vanishing before reading its
   responses — is logged to stderr and the accept loop continues.  In
   sequential mode non-I/O exceptions (daemon bugs) still propagate. *)
let run_socket ?(max_conns = 1) t ~path : stop =
  if max_conns < 1 then
    invalid_arg "Epic_serve.Server.run_socket: max_conns must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock (max 16 max_conns);
  let rec accept_loop () =
    let conn, _ = Unix.accept sock in
    let oc = Unix.out_channel_of_descr conn in
    let stop =
      match serve t (io_of_fd conn oc) with
      | stop -> stop
      | exception
          (( Unix.Unix_error
               ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN
                 | Unix.ETIMEDOUT ),
                 _, _ )
           | Sys_error _ ) as e) ->
        Printf.eprintf "epicd: dropping client after connection error: %s\n%!"
          (Printexc.to_string e);
        Eof
      | exception e ->
        (try Unix.close conn with Unix.Unix_error (_, _, _) -> ());
        raise e
    in
    (try flush oc with Sys_error _ -> ());
    (try Unix.close conn with Unix.Unix_error (_, _, _) -> ());
    match stop with Eof -> accept_loop () | Shutdown_requested -> Shutdown_requested
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
      try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      if max_conns = 1 then accept_loop ()
      else run_socket_concurrent t ~sock ~max_conns)
