(* Unit and property tests for the instruction set: word arithmetic,
   operand metadata, ALU semantics, mnemonic round-trips. *)

module Isa = Epic.Isa
module Word = Epic.Isa.Word

let check_int = Alcotest.(check int)

let test_word_mask () =
  check_int "mask 8" 0xAB (Word.mask 8 0x1AB);
  check_int "mask 32 identity" 0xDEADBEEF (Word.mask 32 0xDEADBEEF);
  check_int "mask negative" 0xFFFFFFFF (Word.mask 32 (-1));
  check_int "mask 1" 1 (Word.mask 1 3)

let test_word_signed () =
  check_int "to_signed -1" (-1) (Word.to_signed 32 0xFFFFFFFF);
  check_int "to_signed min" (-2147483648) (Word.to_signed 32 0x80000000);
  check_int "to_signed max" 2147483647 (Word.to_signed 32 0x7FFFFFFF);
  check_int "of_signed -1" 0xFFFFFFFF (Word.of_signed 32 (-1));
  check_int "roundtrip" (-1234) (Word.to_signed 16 (Word.of_signed 16 (-1234)));
  check_int "min_signed 8" (-128) (Word.min_signed 8);
  check_int "max_signed 8" 127 (Word.max_signed 8);
  check_int "max_unsigned 8" 255 (Word.max_unsigned 8)

let test_word_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Epic_isa.Word: unsupported width 0")
    (fun () -> ignore (Word.mask 0 1));
  Alcotest.check_raises "width 33" (Invalid_argument "Epic_isa.Word: unsupported width 33")
    (fun () -> ignore (Word.mask 33 1))

let no_custom name _ _ = Alcotest.failf "unexpected custom op %s" name

let ev op a b = Isa.eval_alu ~width:32 ~custom:no_custom op a b

let test_alu_arith () =
  check_int "add" 7 (ev Isa.ADD 3 4);
  check_int "add wraps" 0 (ev Isa.ADD 0xFFFFFFFF 1);
  check_int "sub wraps" 0xFFFFFFFF (ev Isa.SUB 0 1);
  check_int "mpy" 12 (ev Isa.MPY 3 4);
  check_int "mpy wraps" 0xFFFFFFFE (ev Isa.MPY 0xFFFFFFFF 2);
  check_int "mpy large"
    (Word.mask 32 (0x12345678 * 0x9ABCDEF0))
    (ev Isa.MPY 0x12345678 0x9ABCDEF0);
  check_int "div" 3 (ev Isa.DIV 10 3);
  check_int "div negative" (Word.of_signed 32 (-3)) (ev Isa.DIV (Word.of_signed 32 (-10)) 3);
  check_int "div by zero" 0 (ev Isa.DIV 10 0);
  check_int "rem" 1 (ev Isa.REM 10 3);
  check_int "rem by zero" 10 (ev Isa.REM 10 0);
  check_int "min signed" (Word.of_signed 32 (-5)) (ev Isa.MIN (Word.of_signed 32 (-5)) 3);
  check_int "max signed" 3 (ev Isa.MAX (Word.of_signed 32 (-5)) 3);
  check_int "abs" 5 (ev Isa.ABS (Word.of_signed 32 (-5)) 0)

let test_alu_logic () =
  check_int "and" 0b1000 (ev Isa.AND 0b1100 0b1010);
  check_int "or" 0b1110 (ev Isa.OR 0b1100 0b1010);
  check_int "xor" 0b0110 (ev Isa.XOR 0b1100 0b1010);
  check_int "andcm" 0b0100 (ev Isa.ANDCM 0b1100 0b1010);
  check_int "nand" (Word.mask 32 (lnot 0b1000)) (ev Isa.NAND 0b1100 0b1010);
  check_int "nor" (Word.mask 32 (lnot 0b1110)) (ev Isa.NOR 0b1100 0b1010)

let test_alu_shift () =
  check_int "shl" 0b1000 (ev Isa.SHL 1 3);
  check_int "shl 31" 0x80000000 (ev Isa.SHL 1 31);
  check_int "shl 32 gives 0" 0 (ev Isa.SHL 1 32);
  check_int "shr" 1 (ev Isa.SHR 0x80000000 31);
  check_int "shr 32 gives 0" 0 (ev Isa.SHR 0xFFFFFFFF 32);
  check_int "shra sign fill" 0xFFFFFFFF (ev Isa.SHRA 0x80000000 31);
  check_int "shra positive" 0x20000000 (ev Isa.SHRA 0x40000000 1);
  check_int "shra 40 is sign" 0xFFFFFFFF (ev Isa.SHRA 0x80000000 40);
  check_int "mov" 42 (ev Isa.MOV 42 0)

let test_eval_cmp () =
  let t c a b = Alcotest.(check bool) (Isa.string_of_cond c) true (Isa.eval_cmp ~width:32 c a b) in
  let f c a b = Alcotest.(check bool) (Isa.string_of_cond c) false (Isa.eval_cmp ~width:32 c a b) in
  t Isa.C_eq 5 5; f Isa.C_eq 5 6;
  t Isa.C_ne 5 6; f Isa.C_ne 5 5;
  (* -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned *)
  t Isa.C_lt 0xFFFFFFFF 1;
  f Isa.C_ltu 0xFFFFFFFF 1;
  t Isa.C_gtu 0xFFFFFFFF 1;
  t Isa.C_le 5 5; t Isa.C_ge 5 5; t Isa.C_leu 5 5; t Isa.C_geu 5 5;
  f Isa.C_gt 5 5; f Isa.C_geu 1 2

let test_mnemonic_roundtrip () =
  List.iter
    (fun op ->
      let s = Isa.string_of_opcode op in
      match Isa.opcode_of_string s with
      | Some op' -> Alcotest.(check bool) s true (Isa.equal_opcode op op')
      | None -> Alcotest.failf "mnemonic %s did not parse" s)
    (Isa.all_base_opcodes @ [ Isa.CUSTOM "ROTR"; Isa.CUSTOM "BSWAP" ])

let test_mnemonic_unknown () =
  Alcotest.(check (option reject)) "FOO" None (Epic.Isa.opcode_of_string "FOO");
  Alcotest.(check (option reject)) "CMPP.XX" None (Epic.Isa.opcode_of_string "CMPP.XX");
  Alcotest.(check (option reject)) "LDX" None (Epic.Isa.opcode_of_string "LDX")

let test_unit_classes () =
  let check op cls = Alcotest.(check bool) (Isa.string_of_opcode op) true (Isa.unit_of op = cls) in
  check Isa.ADD Isa.U_alu;
  check (Isa.CUSTOM "ROTR") Isa.U_alu;
  check (Isa.LD Isa.M_word) Isa.U_lsu;
  check (Isa.ST Isa.M_byte) Isa.U_lsu;
  check (Isa.CMPP Isa.C_eq) Isa.U_cmpu;
  check Isa.PBRR Isa.U_bru;
  check Isa.BRCT Isa.U_bru;
  check Isa.NOP Isa.U_none

let test_reads_writes () =
  let i =
    { Isa.op = Isa.ADD; dst1 = 5; dst2 = 0; src1 = Isa.Sreg 3; src2 = Isa.Simm 7; guard = 2 }
  in
  Alcotest.(check (list (pair bool int)))
    "writes"
    [ (true, 5) ]
    (List.map (fun (f, r) -> (f = Isa.R_gpr, r)) (Isa.writes i));
  let reads = Isa.reads i in
  Alcotest.(check bool) "reads r3" true (List.mem (Isa.R_gpr, 3) reads);
  Alcotest.(check bool) "reads guard p2" true (List.mem (Isa.R_pred, 2) reads);
  (* Writes to GPR 0 are discarded (hardwired zero). *)
  let z = { i with Isa.dst1 = 0 } in
  Alcotest.(check int) "no write to r0" 0 (List.length (Isa.writes z));
  (* Store reads both sources, writes nothing. *)
  let st =
    { Isa.op = Isa.ST Isa.M_word; dst1 = 0; dst2 = 0; src1 = Isa.Sreg 4;
      src2 = Isa.Sreg 6; guard = 0 }
  in
  Alcotest.(check int) "store writes nothing" 0 (List.length (Isa.writes st));
  Alcotest.(check int) "store reads 2" 2 (List.length (Isa.reads st));
  (* Conditional branch reads its BTR and predicate. *)
  let br =
    { Isa.op = Isa.BRCT; dst1 = 0; dst2 = 0; src1 = Isa.Simm 3; src2 = Isa.Simm 1; guard = 0 }
  in
  Alcotest.(check bool) "brct reads btr" true (List.mem (Isa.R_btr, 3) (Isa.reads br));
  Alcotest.(check bool) "brct reads pred" true (List.mem (Isa.R_pred, 1) (Isa.reads br))

let test_gpr_port_ops () =
  let mk op dst1 src1 src2 = { Isa.op; dst1; dst2 = 0; src1; src2; guard = 0 } in
  check_int "add r,r,r = 3 ports" 3
    (Isa.gpr_port_ops (mk Isa.ADD 5 (Isa.Sreg 1) (Isa.Sreg 2)));
  check_int "add r,r,imm = 2 ports" 2
    (Isa.gpr_port_ops (mk Isa.ADD 5 (Isa.Sreg 1) (Isa.Simm 2)));
  check_int "nop = 0 ports" 0 (Isa.gpr_port_ops Isa.nop);
  check_int "cmpp counts only gpr reads" 2
    (Isa.gpr_port_ops
       { Isa.op = Isa.CMPP Isa.C_lt; dst1 = 1; dst2 = 2; src1 = Isa.Sreg 3;
         src2 = Isa.Sreg 4; guard = 0 })

let test_default_latencies () =
  Alcotest.(check bool) "mpy slower than add" true
    (Isa.default_latency Isa.MPY > Isa.default_latency Isa.ADD);
  Alcotest.(check bool) "div slowest" true
    (Isa.default_latency Isa.DIV > Isa.default_latency Isa.MPY);
  Alcotest.(check bool) "load has latency 2" true
    (Isa.default_latency (Isa.LD Isa.M_word) = 2)

(* Property: eval_alu output is always canonical for the given width. *)
let prop_alu_canonical =
  QCheck.Test.make ~name:"eval_alu result is canonical" ~count:500
    QCheck.(triple (int_bound 14) (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (opk, a, b) ->
      let ops =
        [| Isa.ADD; Isa.SUB; Isa.MPY; Isa.DIV; Isa.REM; Isa.MIN; Isa.MAX;
           Isa.AND; Isa.OR; Isa.XOR; Isa.ANDCM; Isa.NAND; Isa.NOR; Isa.SHL;
           Isa.SHR |]
      in
      let r = ev ops.(opk) a b in
      r >= 0 && r <= 0xFFFFFFFF)

let prop_word_roundtrip =
  QCheck.Test.make ~name:"of_signed/to_signed roundtrip" ~count:500
    QCheck.(pair (int_range 1 32) (int_range (-1000000) 1000000))
    (fun (w, v) ->
      QCheck.assume (v >= Word.min_signed w && v <= Word.max_signed w);
      Word.to_signed w (Word.of_signed w v) = v)

let suite =
  [
    Alcotest.test_case "word mask" `Quick test_word_mask;
    Alcotest.test_case "word signed conversions" `Quick test_word_signed;
    Alcotest.test_case "word invalid widths" `Quick test_word_invalid;
    Alcotest.test_case "alu arithmetic" `Quick test_alu_arith;
    Alcotest.test_case "alu logic" `Quick test_alu_logic;
    Alcotest.test_case "alu shifts" `Quick test_alu_shift;
    Alcotest.test_case "comparisons" `Quick test_eval_cmp;
    Alcotest.test_case "mnemonic roundtrip" `Quick test_mnemonic_roundtrip;
    Alcotest.test_case "unknown mnemonics" `Quick test_mnemonic_unknown;
    Alcotest.test_case "unit classes" `Quick test_unit_classes;
    Alcotest.test_case "reads/writes metadata" `Quick test_reads_writes;
    Alcotest.test_case "gpr port accounting" `Quick test_gpr_port_ops;
    Alcotest.test_case "default latencies" `Quick test_default_latencies;
    QCheck_alcotest.to_alcotest prop_alu_canonical;
    QCheck_alcotest.to_alcotest prop_word_roundtrip;
  ]
