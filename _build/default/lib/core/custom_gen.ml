(* Automatic custom-instruction generation — the paper's stated next step
   ("current and future work includes ... supporting automatic generation
   of custom instructions", Section 6; the group's later work, e.g. Atasu
   et al., formalised the approach).

   Flow:
   1. profile the program with the MIR reference interpreter (dynamic
      block execution counts);
   2. enumerate connected dataflow expressions inside basic blocks —
      trees of ALU operations whose intermediate values have a single use
      — under the hardware I/O constraint of the EPIC custom-operation
      slot: at most TWO external register inputs and one output (embedded
      constants are free: they become part of the functional unit);
   3. rank candidate patterns by estimated dynamic cycle savings
      (operations fused minus the one issue slot the custom op costs);
   4. materialise a winner: synthesise its combinational semantics as a
      {!Epic_config.custom_op} and rewrite every occurrence in the program
      into an [X.<name>] operation (dead intermediate computations are
      swept by the optimiser's DCE).

   The SHA-256 rotations (SHR/SHL/OR with embedded shift counts) are the
   canonical catch — running this on the SHA benchmark discovers rotate
   instructions automatically. *)

module Ir = Epic_mir.Ir
module Config = Epic_config
module Interp = Epic_mir.Interp
module Word = Epic_isa.Word

(* A candidate pattern: a little expression tree over at most two external
   inputs [X 0], [X 1] and embedded constants. *)
type expr =
  | X of int                       (* external input (0 or 1) *)
  | C of int                       (* embedded constant *)
  | Op of Ir.binop * expr * expr

type candidate = {
  cg_name : string;        (* generated mnemonic, e.g. GEN_4F2A1C *)
  cg_expr : expr;
  cg_inputs : int;         (* 1 or 2 external inputs *)
  cg_ops : int;            (* base operations fused *)
  cg_static : int;         (* static occurrences in the program *)
  cg_dynamic : int;        (* dynamic occurrences (profile-weighted) *)
  cg_saved_ops : int;      (* dynamic operations eliminated *)
}

let rec pp_expr ppf = function
  | X k -> Format.fprintf ppf "x%d" k
  | C v -> Format.fprintf ppf "%d" v
  | Op (op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (Ir.string_of_binop op) pp_expr a pp_expr b

let expr_to_string e = Format.asprintf "%a" pp_expr e

let rec count_ops = function
  | X _ | C _ -> 0
  | Op (_, a, b) -> 1 + count_ops a + count_ops b

(* Synthesised combinational semantics (width-parametric, like every
   custom operation).  Division never appears in candidates, so the
   evaluation is total. *)
let rec eval_expr ~width env = function
  | X k -> env.(k)
  | C v -> Word.mask width v
  | Op (op, a, b) ->
    let a = eval_expr ~width env a and b = eval_expr ~width env b in
    let sa = Word.to_signed width a and sb = Word.to_signed width b in
    (match op with
     | Ir.Add -> Word.mask width (a + b)
     | Ir.Sub -> Word.mask width (a - b)
     | Ir.Mul -> Word.mask width (a * b)
     | Ir.And -> a land b
     | Ir.Or -> a lor b
     | Ir.Xor -> a lxor b
     | Ir.Shl -> if b >= width then 0 else Word.mask width (a lsl b)
     | Ir.Shr -> if b >= width then 0 else a lsr b
     | Ir.Shra -> Word.of_signed width (sa asr min b (width - 1))
     | Ir.Min -> if sa <= sb then a else b
     | Ir.Max -> if sa >= sb then a else b
     | Ir.Div | Ir.Rem -> invalid_arg "Custom_gen: division in pattern")

let name_of_expr e =
  let s = expr_to_string e in
  Printf.sprintf "GEN_%06X" (Hashtbl.hash s land 0xFFFFFF)

(* Which operations may be fused: single-cycle combinational ALU work.
   Multiplies and divides keep their own latency; Min/Max are allowed. *)
let fusable = function
  | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr | Ir.Shra
  | Ir.Min | Ir.Max -> true
  | Ir.Mul | Ir.Div | Ir.Rem -> false

(* ------------------------------------------------------------------ *)
(* Occurrence discovery inside one block.

   For the consumer instruction at index [k], expand register operands
   whose defining Bin is earlier in the same block, feeds only this
   consumer (single use in the whole function), and is not invalidated by
   an intervening redefinition of its own operands. *)

type occurrence = {
  oc_expr : expr;
  oc_consumer : int;              (* index of the root instruction *)
  oc_covered : int list;          (* indices of all fused instructions *)
  oc_args : Ir.operand array;     (* bindings for X 0 / X 1 *)
}

let block_occurrences ~use_counts (b : Ir.block) ~max_ops =
  let insts = Array.of_list b.Ir.b_insts in
  let n = Array.length insts in
  (* def_site.(v) = Some k if vreg v is defined exactly once in this block,
     by an unguarded Bin at index k. *)
  let def_site = Hashtbl.create 16 in
  Array.iteri
    (fun k (i : Ir.inst) ->
      List.iter
        (fun (cls, v) ->
          if cls = Ir.Cgpr then
            if Hashtbl.mem def_site v then Hashtbl.replace def_site v None
            else
              Hashtbl.replace def_site v
                (match (i.Ir.kind, i.Ir.guard) with
                 | Ir.Bin (op, _, _, _), None when fusable op -> Some k
                 | _ -> None))
        (Ir.defs_of_inst i))
    insts;
  (* redefined v between (i, k) exclusive-inclusive start, exclusive end *)
  let redefined v lo hi =
    let r = ref false in
    for k = lo + 1 to hi - 1 do
      if List.exists (fun (cls, v') -> cls = Ir.Cgpr && v' = v) (Ir.defs_of_inst insts.(k))
      then r := true
    done;
    !r
  in
  let occs = ref [] in
  for k = 0 to n - 1 do
    match (insts.(k).Ir.kind, insts.(k).Ir.guard) with
    | Ir.Bin (root_op, _, _, _), None when fusable root_op ->
      (* Expand greedily: externals accumulate in [args]. *)
      let args = ref [] in
      let covered = ref [] in
      let ops = ref 0 in
      let exception Too_big in
      let bind_external (o : Ir.operand) =
        match o with
        | Ir.Imm v -> C v
        | Ir.Reg r ->
          (match List.assoc_opt (`R r) !args with
           | Some idx -> X idx
           | None ->
             let idx = List.length !args in
             if idx >= 2 then raise Too_big;
             args := !args @ [ (`R r, idx) ];
             X idx)
      in
      let rec expand at (o : Ir.operand) =
        match o with
        | Ir.Imm v -> C v
        | Ir.Reg r ->
          (match Hashtbl.find_opt def_site r with
           | Some (Some d)
             when d < at
                  && Hashtbl.find_opt use_counts r = Some 1
                  && !ops < max_ops
                  && not (redefined r d at) ->
             (* The producer feeds only this consumer: fuse it, provided
                its own operands are stable between producer and root. *)
             (match insts.(d).Ir.kind with
              | Ir.Bin (op, _, a, b') ->
                let stable (oo : Ir.operand) =
                  match oo with Ir.Imm _ -> true | Ir.Reg rr -> not (redefined rr d k)
                in
                if stable a && stable b' then begin
                  incr ops;
                  covered := d :: !covered;
                  let ea = expand d a in
                  let eb = expand d b' in
                  Op (op, ea, eb)
                end
                else bind_external o
              | _ -> bind_external o)
           | _ -> bind_external o)
      in
      (try
         match insts.(k).Ir.kind with
         | Ir.Bin (op, _, a, b') ->
           incr ops;
           let ea = expand k a in
           let eb = expand k b' in
           if !ops >= 2 then
             occs :=
               {
                 oc_expr = Op (op, ea, eb);
                 oc_consumer = k;
                 oc_covered = k :: !covered;
                 oc_args =
                   (let arr = Array.make 2 (Ir.Imm 0) in
                    List.iter (fun (`R r, idx) -> arr.(idx) <- Ir.Reg r) !args;
                    arr);
               }
               :: !occs
         | _ -> ()
       with Too_big -> ())
    | _ -> ()
  done;
  !occs

let function_use_counts (f : Ir.func) =
  let counts = Hashtbl.create 64 in
  let bump (cls, v) =
    if cls = Ir.Cgpr then
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter (fun i -> List.iter bump (Ir.uses_of_inst i)) b.Ir.b_insts;
      List.iter bump (Ir.uses_of_term b.Ir.b_term))
    f.Ir.f_blocks;
  counts

(* ------------------------------------------------------------------ *)
(* Identification across the whole program. *)

let identify ?(max_ops = 3) ?(top = 5) ?(entry = "main") ?custom (p : Ir.program) =
  let profile = (Interp.run ?custom p ~entry).Interp.block_counts in
  let weight fname bid =
    Option.value ~default:0 (Hashtbl.find_opt profile (fname, bid))
  in
  let table : (string, expr * int * int * int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (f : Ir.func) ->
      let use_counts = function_use_counts f in
      List.iter
        (fun (b : Ir.block) ->
          let w = weight f.Ir.f_name b.Ir.b_id in
          List.iter
            (fun occ ->
              let key = expr_to_string occ.oc_expr in
              let expr = occ.oc_expr in
              let saved = count_ops expr - 1 in
              let prev =
                Option.value ~default:(expr, 0, 0, 0) (Hashtbl.find_opt table key)
              in
              let _, st, dy, sv = prev in
              Hashtbl.replace table key (expr, st + 1, dy + w, sv + (saved * w)))
            (block_occurrences ~use_counts b ~max_ops))
        f.Ir.f_blocks)
    p.Ir.p_funcs;
  Hashtbl.fold
    (fun _key (expr, st, dy, sv) acc ->
      let inputs =
        let rec go = function
          | X k -> k + 1
          | C _ -> 0
          | Op (_, a, b) -> max (go a) (go b)
        in
        go expr
      in
      {
        cg_name = name_of_expr expr;
        cg_expr = expr;
        cg_inputs = max 1 inputs;
        cg_ops = count_ops expr;
        cg_static = st;
        cg_dynamic = dy;
        cg_saved_ops = sv;
      }
      :: acc)
    table []
  |> List.sort (fun a b -> compare b.cg_saved_ops a.cg_saved_ops)
  |> List.filteri (fun i _ -> i < top)

(* ------------------------------------------------------------------ *)
(* Materialisation: a Config custom op + program rewrite. *)

let to_custom_op c =
  {
    Config.cop_name = c.cg_name;
    cop_semantics =
      (fun ~width a b -> eval_expr ~width [| a; b |] c.cg_expr);
    (* A 2-op chain still fits a cycle; deeper trees take two. *)
    cop_latency = (if c.cg_ops <= 2 then 1 else 2);
    cop_slices = 90 * c.cg_ops;
    cop_description = Printf.sprintf "generated: %s" (expr_to_string c.cg_expr);
  }

(* Rewrite every occurrence of the candidate's pattern: the consumer
   becomes [Custom (name, d, in0, in1)]; fused producers become dead and
   fall to DCE. *)
let apply (p : Ir.program) (c : candidate) =
  let rewritten = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      let use_counts = function_use_counts f in
      List.iter
        (fun (b : Ir.block) ->
          let occs = block_occurrences ~use_counts b ~max_ops:c.cg_ops in
          let matching =
            List.filter (fun o -> expr_to_string o.oc_expr = expr_to_string c.cg_expr) occs
          in
          if matching <> [] then begin
            let insts = Array.of_list b.Ir.b_insts in
            List.iter
              (fun occ ->
                match insts.(occ.oc_consumer).Ir.kind with
                | Ir.Bin (_, d, _, _) ->
                  insts.(occ.oc_consumer) <-
                    Ir.no_guard
                      (Ir.Custom (c.cg_name, d, occ.oc_args.(0), occ.oc_args.(1)));
                  incr rewritten
                | _ -> ())
              matching;
            b.Ir.b_insts <- Array.to_list insts
          end)
        f.Ir.f_blocks)
    p.Ir.p_funcs;
  (p, !rewritten)

(* End-to-end convenience: repeatedly identify the best remaining
   candidate on the (already optimised) program, rewrite its occurrences,
   sweep dead producers, and extend the configuration — up to [rounds]
   generated instructions or until nothing worthwhile remains. *)
let specialise ?(max_ops = 3) ?(rounds = 4) ?(min_saved = 1) (cfg : Config.t)
    (p : Ir.program) =
  let p = ref (Epic_opt.Common.copy_program p) in
  let cfg = ref cfg in
  let chosen = ref [] in
  let continue_ = ref true in
  while !continue_ && List.length !chosen < rounds do
    continue_ := false;
    (* Profiling must understand the custom operations added so far. *)
    let custom name a b = Config.custom_eval !cfg name a b in
    match identify ~max_ops ~top:1 ~custom !p with
    | c :: _ when c.cg_saved_ops >= min_saved ->
      let p', rewritten = apply !p c in
      if rewritten > 0 then begin
        p := Epic_opt.Dce.run p';
        cfg := Config.add_custom_op !cfg (to_custom_op c);
        chosen := (c, rewritten) :: !chosen;
        continue_ := true
      end
    | _ -> ()
  done;
  if !chosen = [] then None else Some (!cfg, !p, List.rev !chosen)
