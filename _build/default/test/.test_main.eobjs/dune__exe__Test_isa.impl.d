test/test_isa.ml: Alcotest Array Epic List QCheck QCheck_alcotest
