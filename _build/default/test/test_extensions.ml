(* Tests for the future-work extensions: automatic custom-instruction
   generation, pipeline-depth parameterisation, and the power model. *)

module Config = Epic.Config
module CG = Epic.Custom_gen
module Area = Epic.Area
module Ir = Epic.Ir
module T = Epic.Toolchain

(* ------------------------------------------------------------------ *)
(* Custom-instruction generation *)

let rotate_src =
  (* A hot loop full of 32-bit rotations: the generator must fuse them. *)
  "int main() {\n\
   \  int x = 0x12345678;\n\
   \  int s = 0;\n\
   \  for (int i = 0; i < 50; i++) {\n\
   \    x = (__lsr(x, 7) | (x << 25)) + i;\n\
   \    s = s ^ x;\n\
   \  }\n\
   \  return s;\n\
   }"

let test_identify_finds_rotation () =
  let p = Epic.Opt.standard (Epic.Cfront.compile rotate_src) in
  let cands = CG.identify ~top:3 p in
  Alcotest.(check bool) "found candidates" true (cands <> []);
  let best = List.hd cands in
  Alcotest.(check bool) "multi-op pattern" true (best.CG.cg_ops >= 2);
  Alcotest.(check bool) "single input (a rotation)" true (best.CG.cg_inputs = 1);
  Alcotest.(check bool) "dynamically hot" true (best.CG.cg_dynamic >= 50)

let test_specialise_preserves_semantics () =
  let p = Epic.Opt.standard (Epic.Cfront.compile rotate_src) in
  let expected = (Epic.Interp.run p ~entry:"main").Epic.Interp.ret in
  match CG.specialise ~rounds:3 Config.default p with
  | None -> Alcotest.fail "expected a candidate"
  | Some (cfg, p', chosen) ->
    Alcotest.(check bool) "generated at least one op" true (chosen <> []);
    (* Interpreter semantics with the synthesised custom resolver. *)
    let custom name a b = Config.custom_eval cfg name a b in
    Alcotest.(check int) "interp agrees" expected
      (Epic.Interp.run ~custom p' ~entry:"main").Epic.Interp.ret;
    (* End-to-end through the EPIC backend. *)
    let layout = Epic.Memmap.layout p' in
    let unit_, _ = Epic.Sched.compile_program cfg layout p' in
    let image, _words = Epic.Asm.assemble cfg unit_ in
    let mem = Epic.Memmap.init_memory layout p' in
    let r = Epic.Sim.run cfg ~image ~mem () in
    Alcotest.(check int) "simulator agrees" expected r.Epic.Sim.ret

let test_specialise_reduces_ops () =
  let p = Epic.Opt.standard (Epic.Cfront.compile rotate_src) in
  match CG.specialise ~rounds:3 Config.default p with
  | None -> Alcotest.fail "expected a candidate"
  | Some (cfg, p', _) ->
    let count prog =
      let custom name a b = Config.custom_eval cfg name a b in
      (Epic.Interp.run ~custom prog ~entry:"main").Epic.Interp.dyn_insts
    in
    Alcotest.(check bool) "fewer dynamic MIR instructions" true
      (count p' < count p)

let test_generated_op_roundtrips () =
  (* The synthesised op must encode/decode and survive the mdes. *)
  let p = Epic.Opt.standard (Epic.Cfront.compile rotate_src) in
  match CG.specialise ~rounds:1 Config.default p with
  | None -> Alcotest.fail "expected a candidate"
  | Some (cfg, _, (c, _) :: _) ->
    let name = c.CG.cg_name in
    let table = Epic.Encoding.make_table cfg in
    let i =
      { Epic.Isa.op = Epic.Isa.CUSTOM name; dst1 = 12; dst2 = 0;
        src1 = Epic.Isa.Sreg 13; src2 = Epic.Isa.Sreg 14; guard = 0 }
    in
    let w = Epic.Encoding.encode table cfg i in
    Alcotest.(check bool) "binary roundtrip" true
      (Epic.Isa.equal_inst i (Epic.Encoding.decode table cfg w));
    let md = Epic.Mdes.of_config cfg in
    Alcotest.(check bool) "in the machine description" true
      (Epic.Mdes.op_supported md (Epic.Isa.CUSTOM name))
  | Some (_, _, []) -> Alcotest.fail "no chosen candidate"

let test_no_candidates_in_trivial_program () =
  let p = Epic.Opt.standard (Epic.Cfront.compile "int main() { return 7; }") in
  Alcotest.(check bool) "nothing to fuse" true (CG.identify p = [])

let test_candidate_respects_io_constraint () =
  (* Many independent inputs: candidates must never need more than 2. *)
  let src =
    "int main(int x, int y) {\n\
     \  int s = 0;\n\
     \  for (int i = 0; i < 20; i++) s += (x + y) ^ (s + i) ^ (x - i);\n\
     \  return s;\n\
     }"
  in
  let p = Epic.Opt.standard (Epic.Cfront.compile src) in
  let p =
    (* bake arguments so the profile run works *)
    match Ir.find_func p "main" with
    | Some f when List.length f.Ir.f_params = 2 ->
      let wrapped =
        Epic.Cfront.compile
          (Str.global_replace (Str.regexp_string "int main(") "int body__(" src
          ^ "\nint main() { return body__(11, 22); }")
      in
      Epic.Opt.standard wrapped
    | _ -> p
  in
  List.iter
    (fun (c : CG.candidate) ->
      Alcotest.(check bool) "<= 2 inputs" true (c.CG.cg_inputs <= 2);
      Alcotest.(check bool) "<= 3 ops" true (c.CG.cg_ops <= 3))
    (CG.identify ~top:10 p)

(* ------------------------------------------------------------------ *)
(* Pipeline depth *)

let test_pipeline_validation () =
  (match Config.validate { Config.default with Config.pipeline_stages = 1 } with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "1-stage must be rejected");
  (match Config.validate { Config.default with Config.pipeline_stages = 5 } with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "5-stage must be rejected");
  ignore (Config.validate_exn { Config.default with Config.pipeline_stages = 3 })

let test_pipeline_bubbles_scale () =
  let src =
    "int main() { int s = 0; for (int i = 0; i < 50; i++) s += i; return s; }"
  in
  let cycles stages bubbles_out =
    let cfg =
      Config.validate_exn { Config.default with Config.pipeline_stages = stages }
    in
    let a = T.compile_epic cfg ~source:src () in
    let r = T.run_epic a in
    Alcotest.(check int) "result stable" 1225 r.Epic.Sim.ret;
    bubbles_out := r.Epic.Sim.stats.Epic.Sim.branch_bubbles;
    r.Epic.Sim.stats.Epic.Sim.cycles
  in
  let b2 = ref 0 and b3 = ref 0 in
  let c2 = cycles 2 b2 in
  let c3 = cycles 3 b3 in
  Alcotest.(check bool) "deeper pipeline costs cycles" true (c3 > c2);
  Alcotest.(check int) "bubbles exactly double" (2 * !b2) !b3

let test_pipeline_clock_gain () =
  let mhz stages =
    (Area.estimate { Config.default with Config.pipeline_stages = stages }).Area.clock_mhz
  in
  Alcotest.(check bool) "3-stage clocks higher" true (mhz 3 > mhz 2);
  Alcotest.(check bool) "4-stage higher still" true (mhz 4 > mhz 3)

(* ------------------------------------------------------------------ *)
(* Power model *)

let activity ~cycles ~alu =
  { Area.ac_cycles = cycles; ac_alu_ops = alu; ac_lsu_ops = 0; ac_cmpu_ops = 0;
    ac_bru_ops = 0; ac_nops = 0 }

let test_power_monotone_in_activity () =
  let cfg = Config.default in
  let idle = Area.power cfg (activity ~cycles:1000 ~alu:0) in
  let busy = Area.power cfg (activity ~cycles:1000 ~alu:4000) in
  Alcotest.(check bool) "dynamic power grows with activity" true
    (busy.Area.pw_dynamic_mw > idle.Area.pw_dynamic_mw);
  Alcotest.(check bool) "static power unchanged" true
    (abs_float (busy.Area.pw_static_mw -. idle.Area.pw_static_mw) < 1e-9)

let test_power_static_tracks_area () =
  let small = Area.power (Config.with_alus 1) (activity ~cycles:1000 ~alu:100) in
  let large = Area.power (Config.with_alus 4) (activity ~cycles:1000 ~alu:100) in
  Alcotest.(check bool) "bigger design leaks more" true
    (large.Area.pw_static_mw > small.Area.pw_static_mw)

let test_power_from_real_run () =
  let bm = Epic.Workloads.Sources.dct_benchmark ~width:8 ~height:8 () in
  let st =
    T.epic_cycles Config.default ~source:bm.Epic.Workloads.Sources.bm_source
      ~expected:bm.Epic.Workloads.Sources.bm_expected ()
  in
  let p = Area.power Config.default (Epic.Experiments.activity_of_stats st) in
  Alcotest.(check bool) "sane range" true
    (p.Area.pw_total_mw > 50.0 && p.Area.pw_total_mw < 2000.0);
  Alcotest.(check bool) "energy positive" true (p.Area.pw_energy_uj > 0.0)

let test_energy_sweet_spot_exists () =
  (* The A6 story: energy is not monotone in ALU count (static power of
     idle ALUs vs shorter runtime). *)
  let pts = Epic.Experiments.ablate_power ~sizes:{
      Epic.Experiments.default_sizes with
      Epic.Experiments.dct_size = (16, 16) } ()
  in
  Alcotest.(check int) "four points" 4 (List.length pts);
  List.iter
    (fun (p : Epic.Experiments.power_point) ->
      Alcotest.(check bool) "positive energy" true
        (p.Epic.Experiments.po_power.Area.pw_energy_uj > 0.0))
    pts

let suite =
  [
    Alcotest.test_case "autogen: identifies rotations" `Quick test_identify_finds_rotation;
    Alcotest.test_case "autogen: semantics preserved" `Quick test_specialise_preserves_semantics;
    Alcotest.test_case "autogen: fewer dynamic ops" `Quick test_specialise_reduces_ops;
    Alcotest.test_case "autogen: generated op roundtrips" `Quick test_generated_op_roundtrips;
    Alcotest.test_case "autogen: trivial program" `Quick test_no_candidates_in_trivial_program;
    Alcotest.test_case "autogen: I/O constraint" `Quick test_candidate_respects_io_constraint;
    Alcotest.test_case "pipeline: validation" `Quick test_pipeline_validation;
    Alcotest.test_case "pipeline: bubbles scale with depth" `Quick test_pipeline_bubbles_scale;
    Alcotest.test_case "pipeline: clock gain" `Quick test_pipeline_clock_gain;
    Alcotest.test_case "power: monotone in activity" `Quick test_power_monotone_in_activity;
    Alcotest.test_case "power: static tracks area" `Quick test_power_static_tracks_area;
    Alcotest.test_case "power: real run in range" `Quick test_power_from_real_run;
    Alcotest.test_case "power: ALU sweep" `Quick test_energy_sweet_spot_exists;
  ]
