lib/mir/interp.ml: Array Bytes Epic_isa Format Hashtbl Ir List Memmap Option
