(* Fault-model tests: the architectural trap taxonomy (bad PC, memory
   bounds, illegal operation, fuel watchdog), graceful termination with
   partial statistics, a-priori-known fault classifications against hand
   written programs, and determinism of seeded injection campaigns. *)

module Isa = Epic.Isa
module Config = Epic.Config
module Sim = Epic.Sim
module Fault = Epic.Fault
module A = Epic.Asm.Aunit
module Text = Epic.Asm.Text
module W = Epic.Workloads
module T = Epic.Toolchain

let cfg = Config.default

let image_of text = A.resolve cfg (Text.of_string text)

let run ?fuel ?tamper text ~mem_bytes =
  let mem = Bytes.make mem_bytes '\000' in
  Sim.run ?fuel ?tamper cfg ~image:(image_of text) ~mem ()

let trap_cause (r : Sim.result) =
  match r.Sim.trap with
  | Some t -> Some t.Sim.tr_cause
  | None -> None

let cause = Alcotest.testable
    (fun ppf c -> Format.pp_print_string ppf (Sim.string_of_trap_cause c))
    (fun a b -> a = b)

(* ---- the trap taxonomy -------------------------------------------- *)

let test_trap_bad_pc () =
  let r = run "_start:\n{ PBRR b0, #999 }\n{ BRU #0 }\n" ~mem_bytes:64 in
  Alcotest.(check (option cause)) "bad pc" (Some Sim.T_bad_pc) (trap_cause r);
  (match r.Sim.trap with
   | Some t ->
     Alcotest.(check int) "trap pc" 999 t.Sim.tr_pc;
     Alcotest.(check bool) "cycles counted" true (t.Sim.tr_cycle > 0)
   | None -> Alcotest.fail "no trap")

let test_trap_mem_bounds () =
  let r =
    run "_start:\n{ MOV r4, #1000 }\n{ LDW r3, r4, #0 }\n{ HALT }\n"
      ~mem_bytes:64
  in
  Alcotest.(check (option cause)) "mem bounds" (Some Sim.T_mem_bounds)
    (trap_cause r);
  (* Partial statistics survive the trap. *)
  Alcotest.(check bool) "partial stats" true (r.Sim.stats.Sim.cycles > 0)

let test_trap_illegal_op () =
  (* Assemble DIV under the full default configuration, then run it on a
     datapath that omits the divider: the decode-stage check must turn
     the unimplemented operation into a trap, not a crash. *)
  let image = image_of "_start:\n{ DIV r3, r4, r5 }\n{ HALT }\n" in
  let no_div =
    Config.validate_exn { cfg with Config.alu_omit = [ Isa.DIV ] }
  in
  let mem = Bytes.make 64 '\000' in
  let r = Sim.run no_div ~image ~mem () in
  Alcotest.(check (option cause)) "illegal op" (Some Sim.T_illegal_op)
    (trap_cause r)

let test_trap_fuel () =
  let r =
    run ~fuel:200 "_start:\n{ PBRR b0, @_start }\n{ BRU #0 }\n" ~mem_bytes:64
  in
  Alcotest.(check (option cause)) "fuel" (Some Sim.T_fuel) (trap_cause r);
  (match r.Sim.trap with
   | Some t -> Alcotest.(check bool) "watchdog fired late" true (t.Sim.tr_cycle >= 200)
   | None -> Alcotest.fail "no trap")

let test_clean_run_no_trap () =
  let r = run "_start:\n{ MOV r3, #42 }\n{ HALT }\n" ~mem_bytes:64 in
  Alcotest.(check (option cause)) "no trap" None (trap_cause r);
  Alcotest.(check int) "returned" 42 r.Sim.ret

let test_run_exn_wrapper () =
  let image = image_of "_start:\n{ PBRR b0, #999 }\n{ BRU #0 }\n" in
  let mem = Bytes.make 64 '\000' in
  (match Sim.run_exn cfg ~image ~mem () with
   | exception Sim.Sim_error _ -> ()
   | _ -> Alcotest.fail "expected Sim_error from run_exn on a trapping image");
  let clean = image_of "_start:\n{ MOV r3, #7 }\n{ HALT }\n" in
  let r = Sim.run_exn cfg ~image:clean ~mem () in
  Alcotest.(check int) "run_exn on clean image" 7 r.Sim.ret

(* A do-nothing tamper hook must not perturb the simulation. *)
let test_tamper_noop_identical () =
  let text =
    "_start:\n{ MOV r4, #6 }\n{ MOV r5, #0 }\n{ PBRR b0, @loop }\n\
     loop:\n{ ADD r5, r5, r4 }\n{ SUB r4, r4, #1 }\n\
     { CMPP.NE p1, p2, r4, #0 }\n{ BRCT #0, #1 }\n{ MOV r3, r5 }\n{ HALT }\n"
  in
  let plain = run text ~mem_bytes:64 in
  let hooked = run ~tamper:(fun _ -> ()) text ~mem_bytes:64 in
  Alcotest.(check int) "same return" plain.Sim.ret hooked.Sim.ret;
  Alcotest.(check int) "same cycles" plain.Sim.stats.Sim.cycles
    hooked.Sim.stats.Sim.cycles;
  Alcotest.(check bool) "same memory" true
    (Bytes.equal plain.Sim.mem hooked.Sim.mem)

(* ---- a-priori fault classifications ------------------------------- *)

(* Load a word from address 16, add one, store the result at address 20.
   Golden: mem[16..19] = 41 (big-endian), so ret = 42. *)
let p1_text =
  "_start:\n{ MOV r4, #16 }\n{ LDW r5, r4, #0 }\n{ ADD r3, r5, #1 }\n\
   { STW r4, #1, r3 }\n{ HALT }\n"

let p1_mem () =
  let mem = Bytes.make 64 '\000' in
  Bytes.set mem 19 (Char.chr 41);
  mem

let p1_inject fault =
  let image = image_of p1_text in
  let mem = p1_mem () in
  let g = Fault.golden cfg ~image ~mem ~entry:0 in
  Alcotest.(check int) "golden ret" 42 g.Sim.ret;
  Fault.inject cfg ~image ~mem ~entry:0 ~fuel:10_000 ~golden_ret:g.Sim.ret
    ~golden_mem:g.Sim.mem fault

let outc = Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Fault.string_of_outcome o))
    (fun a b -> a = b)

let test_classify_masked_dead_gpr () =
  (* r9 is never read: the flip is architecturally invisible. *)
  Alcotest.check outc "dead register" Fault.O_masked
    (p1_inject { Fault.f_target = Fault.F_gpr; f_cycle = 0; f_index = 9; f_bit = 3 })

let test_classify_sdc_live_mem () =
  (* Flip a bit of the word the program is about to load: silent data
     corruption in the result. *)
  Alcotest.check outc "live memory byte" Fault.O_sdc
    (p1_inject { Fault.f_target = Fault.F_mem; f_cycle = 0; f_index = 19; f_bit = 1 })

let test_classify_sdc_untouched_mem () =
  (* A flipped byte the program never touches persists into the final
     memory image, so strict memory comparison classifies it as SDC. *)
  Alcotest.check outc "untouched memory byte" Fault.O_sdc
    (p1_inject { Fault.f_target = Fault.F_mem; f_cycle = 0; f_index = 40; f_bit = 0 })

let test_classify_masked_overwritten_mem () =
  (* The store to 20..23 overwrites the flip before the program halts. *)
  Alcotest.check outc "overwritten memory byte" Fault.O_masked
    (p1_inject { Fault.f_target = Fault.F_mem; f_cycle = 0; f_index = 22; f_bit = 5 })

let test_classify_trap_address_gpr () =
  (* Flip bit 14 of the base register after MOV has executed: the load
     address becomes 16 + 16384, far outside the 64-byte memory. *)
  Alcotest.check outc "address register" (Fault.O_trap Sim.T_mem_bounds)
    (p1_inject { Fault.f_target = Fault.F_gpr; f_cycle = 1; f_index = 4; f_bit = 14 })

let test_classify_masked_inst_unused_field () =
  (* MOV ignores its src2 field, so a flip there decodes to the identical
     instruction. *)
  Alcotest.check outc "unused instruction field" Fault.O_masked
    (p1_inject { Fault.f_target = Fault.F_inst; f_cycle = 0; f_index = 0; f_bit = 5 })

let p2_text =
  "_start:\n{ MOV r4, #6 }\n{ MOV r5, #0 }\n{ PBRR b0, @loop }\n\
   loop:\n{ ADD r5, r5, r4 }\n{ SUB r4, r4, #1 }\n\
   { CMPP.NE p1, p2, r4, #0 }\n{ BRCT #0, #1 }\n{ MOV r3, r5 }\n{ HALT }\n"

let test_classify_timeout_loop_counter () =
  let image = image_of p2_text in
  let mem = Bytes.make 64 '\000' in
  let g = Fault.golden cfg ~image ~mem ~entry:0 in
  Alcotest.(check int) "golden ret" 21 g.Sim.ret;
  (* Flip a high bit of the loop counter mid-loop: the countdown now
     needs ~2^20 iterations and the watchdog fires first. *)
  let o =
    Fault.inject cfg ~image ~mem ~entry:0
      ~fuel:(4 * g.Sim.stats.Sim.cycles + 64) ~golden_ret:g.Sim.ret
      ~golden_mem:g.Sim.mem
      { Fault.f_target = Fault.F_gpr; f_cycle = 4; f_index = 4; f_bit = 20 }
  in
  Alcotest.check outc "runaway loop" Fault.O_timeout o

(* ---- campaign determinism and accounting -------------------------- *)

let p2_campaign ?(seed = 7) ?(runs = 6) () =
  let image = image_of p2_text in
  let mem = Bytes.make 64 '\000' in
  Fault.campaign ~seed ~runs cfg ~image ~mem ~entry:0 ()

let test_campaign_deterministic () =
  let r1 = p2_campaign () and r2 = p2_campaign () in
  Alcotest.(check bool) "same fault list" true
    (r1.Fault.rp_faults = r2.Fault.rp_faults);
  Alcotest.(check bool) "same rows" true (r1.Fault.rp_rows = r2.Fault.rp_rows);
  let r3 = p2_campaign ~seed:8 () in
  Alcotest.(check bool) "different seed, different faults" true
    (r1.Fault.rp_faults <> r3.Fault.rp_faults)

let test_campaign_accounting () =
  let r = p2_campaign ~runs:5 () in
  Alcotest.(check int) "golden ret recorded" 21 r.Fault.rp_golden_ret;
  Alcotest.(check int) "rows" (List.length Fault.all_targets)
    (List.length r.Fault.rp_rows);
  List.iter
    (fun row ->
      Alcotest.(check int)
        (Fault.string_of_target row.Fault.r_target)
        5 (Fault.row_runs row))
    r.Fault.rp_rows;
  Alcotest.(check int) "total runs" (5 * List.length Fault.all_targets)
    (Fault.total_runs r);
  Alcotest.(check int) "fault log length" (Fault.total_runs r)
    (List.length r.Fault.rp_faults);
  List.iter
    (fun row ->
      let avf = Fault.row_avf row in
      Alcotest.(check bool) "AVF in [0,1]" true (avf >= 0.0 && avf <= 1.0))
    r.Fault.rp_rows

let test_campaign_rejects_bad_arguments () =
  let expect_diag code f =
    match f () with
    | exception Epic.Diag.Error d ->
      Alcotest.(check string) "diag code" code d.Epic.Diag.code
    | _ -> Alcotest.failf "expected %s" code
  in
  expect_diag "fault/seed" (fun () -> p2_campaign ~seed:0 ());
  expect_diag "fault/runs" (fun () -> p2_campaign ~runs:0 ());
  (* A trapping golden run is rejected up front. *)
  expect_diag "fault/golden-trap" (fun () ->
      let image = image_of "_start:\n{ PBRR b0, #999 }\n{ BRU #0 }\n" in
      Fault.campaign cfg ~image ~mem:(Bytes.make 64 '\000') ~entry:0 ())

let test_report_json () =
  let r = p2_campaign ~runs:3 () in
  let j = Fault.report_to_json ~faults:true r in
  let s = Epic.Profile.Json.to_string j in
  Alcotest.(check bool) "mentions every target" true
    (List.for_all
       (fun t ->
         let needle = "\"" ^ Fault.string_of_target t ^ "\"" in
         let rec find i =
           i + String.length needle <= String.length s
           && (String.sub s i (String.length needle) = needle || find (i + 1))
         in
         find 0)
       Fault.all_targets)

(* ---- end-to-end over the toolchain -------------------------------- *)

let test_toolchain_campaign () =
  let bm = W.Sources.dijkstra_benchmark ~nodes:6 () in
  let a = T.compile_epic cfg ~source:bm.W.Sources.bm_source () in
  let r = T.fault_campaign ~seed:3 ~runs:2 a in
  Alcotest.(check int) "golden checksum" (bm.W.Sources.bm_expected land 0xFFFFFFFF)
    r.Fault.rp_golden_ret;
  Alcotest.(check int) "total runs" (2 * List.length Fault.all_targets)
    (Fault.total_runs r);
  (* The same seed over the toolchain reproduces the identical report. *)
  let r' = T.fault_campaign ~seed:3 ~runs:2 a in
  Alcotest.(check bool) "reproducible" true (r.Fault.rp_faults = r'.Fault.rp_faults)

let suite =
  [
    Alcotest.test_case "trap: bad pc" `Quick test_trap_bad_pc;
    Alcotest.test_case "trap: memory bounds" `Quick test_trap_mem_bounds;
    Alcotest.test_case "trap: illegal operation" `Quick test_trap_illegal_op;
    Alcotest.test_case "trap: fuel watchdog" `Quick test_trap_fuel;
    Alcotest.test_case "clean run has no trap" `Quick test_clean_run_no_trap;
    Alcotest.test_case "run_exn compatibility wrapper" `Quick test_run_exn_wrapper;
    Alcotest.test_case "no-op tamper is invisible" `Quick test_tamper_noop_identical;
    Alcotest.test_case "classify: dead gpr masked" `Quick test_classify_masked_dead_gpr;
    Alcotest.test_case "classify: live memory sdc" `Quick test_classify_sdc_live_mem;
    Alcotest.test_case "classify: untouched memory sdc" `Quick test_classify_sdc_untouched_mem;
    Alcotest.test_case "classify: overwritten memory masked" `Quick
      test_classify_masked_overwritten_mem;
    Alcotest.test_case "classify: address gpr traps" `Quick test_classify_trap_address_gpr;
    Alcotest.test_case "classify: unused inst field masked" `Quick
      test_classify_masked_inst_unused_field;
    Alcotest.test_case "classify: loop counter timeout" `Quick
      test_classify_timeout_loop_counter;
    Alcotest.test_case "campaign determinism" `Quick test_campaign_deterministic;
    Alcotest.test_case "campaign accounting" `Quick test_campaign_accounting;
    Alcotest.test_case "campaign argument validation" `Quick
      test_campaign_rejects_bad_arguments;
    Alcotest.test_case "report json" `Quick test_report_json;
    Alcotest.test_case "toolchain campaign" `Quick test_toolchain_campaign;
  ]
