(* epicfuzz: the differential fuzzing campaign.  Generates seeded random
   programs (MIR through the real backend, raw assembly bundles, single
   instructions) and cross-checks the toolchain's engines — reference
   interpreter, cycle-level simulator over a configuration grid with
   scheduling on and off, the encoder's round trip, the schedule-contract
   checker and the ARM baseline.  Any divergence is printed with a
   minimised reproducer and the exit status is non-zero.

   stdout is byte-identical for every --jobs value; campaign wall time
   goes to stderr. *)

open Cmdliner

module D = Epic.Difftest

let parse_kinds s =
  match String.lowercase_ascii (String.trim s) with
  | "all" -> D.default_kinds
  | s ->
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun k -> k <> "")
    |> List.map (function
         | "mir" -> D.K_mir
         | "asm" -> D.K_asm
         | "enc" -> D.K_enc
         | k ->
           failwith
             (Printf.sprintf "unknown case kind %S (expected mir, asm, enc)" k))

let run seed cases kinds no_shrink jobs =
  Cli_common.handle_errors @@ fun () ->
  let kinds = parse_kinds kinds in
  let r = D.fuzz ~jobs ~shrink:(not no_shrink) ~kinds ~seed ~cases () in
  Format.eprintf "%a@." Epic.Exec.pp_campaign_stats r.D.r_stats;
  Format.printf "%a" D.pp_report r;
  if r.D.r_findings <> [] then exit 1

let cmd =
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
           ~doc:"Campaign seed; the same seed reproduces the identical \
                 campaign, case by case.")
  in
  let cases =
    Arg.(value & opt int 1000
         & info [ "cases" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let kinds =
    Arg.(value & opt string "all"
         & info [ "kind" ] ~docv:"LIST"
           ~doc:"Comma-separated case kinds to run: mir, asm, enc (default \
                 all, interleaved round-robin).")
  in
  let no_shrink =
    Arg.(value & flag
         & info [ "no-shrink" ]
           ~doc:"Report failing cases unminimised (faster triage runs).")
  in
  Cmd.v
    (Cmd.info "epicfuzz"
       ~doc:"Differential fuzzing of the EPIC toolchain's engines")
    Term.(const run $ seed $ cases $ kinds $ no_shrink $ Cli_common.jobs_term)

let () = exit (Cmd.eval cmd)
