lib/cfront/ast.ml: Printf
