examples/custom_instruction.ml: Epic List Printf
