(** The elcor role of the toolchain: MIR -> EPIC code generation and
    machine-description-driven list scheduling.

    - {!Codegen}: instruction selection, calling convention, prologue/
      epilogue, predicate and branch-target register mapping.
    - {!Sched}: dependence analysis and resource-constrained list
      scheduling of each basic block into issue bundles.

    [compile_program] runs the whole backend: it returns a symbolic
    assembly unit ready for {!Epic_asm.Aunit.assemble}. *)

module Codegen = Codegen
module Sched = Sched

let compile_program ?scheduling (cfg : Epic_config.t) (layout : Epic_mir.Memmap.t)
    (p : Epic_mir.Ir.program) =
  let md = Epic_mdes.of_config cfg in
  let cfuncs = Codegen.gen_program cfg layout p in
  Sched.schedule_program ?scheduling md cfuncs
