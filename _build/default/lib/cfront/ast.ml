(* Abstract syntax of EPIC-C, the C subset accepted by the front-end.

   The language is deliberately small but complete enough for the paper's
   four benchmarks: a single 32-bit [int] type, global and local scalars
   and arrays, functions, full C expression syntax (including short-circuit
   operators and the conditional operator), and the usual statement forms.
   Arrays decay to addresses; array parameters are written [int a[]]. *)

type pos = { line : int; col : int }

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Band | Bor | Bxor
  | Bshl | Bshr  (* >> is arithmetic: int is signed *)
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor  (* short-circuit && and || *)

type unop = Uneg | Unot (* ~ *) | Ulnot (* ! *)

type expr =
  | Eint of int * pos
  | Evar of string * pos
  | Eindex of string * expr * pos        (* a[i] *)
  | Ebin of binop * expr * expr * pos
  | Eun of unop * expr * pos
  | Ecall of string * expr list * pos
  | Econd of expr * expr * expr * pos    (* c ? a : b *)

type lvalue = Lvar of string * pos | Lindex of string * expr * pos

(* Compound assignment carries the operator ([None] is plain [=]). *)
type stmt =
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option * pos
  | Swhile of expr * stmt * pos
  | Sdo of stmt * expr * pos             (* do s while (e); *)
  | Sfor of stmt option * expr option * stmt option * stmt * pos
  | Sreturn of expr option * pos
  | Sbreak of pos
  | Scontinue of pos
  | Sexpr of expr * pos
  | Sassign of lvalue * binop option * expr * pos
  | Sdecl of string * int option * expr option * pos
      (* int x; / int x = e; / int a[N]; — array size must be constant *)
  | Snop

type param = { p_name : string; p_array : bool; p_pos : pos }

type func = {
  fn_name : string;
  fn_params : param list;
  fn_body : stmt list;
  fn_pos : pos;
}

type global = {
  gl_name : string;
  gl_array : int option;        (* Some n: array of n ints *)
  gl_init : int list;           (* word initialisers (may be empty) *)
  gl_pos : pos;
}

type decl = Dglobal of global | Dfunc of func

type program = decl list

let pos_of_expr = function
  | Eint (_, p) | Evar (_, p) | Eindex (_, _, p) | Ebin (_, _, _, p)
  | Eun (_, _, p) | Ecall (_, _, p) | Econd (_, _, _, p) -> p

let string_of_pos p = Printf.sprintf "line %d, col %d" p.line p.col
