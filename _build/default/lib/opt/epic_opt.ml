(** Machine-independent optimiser (the IMPACT role in the paper's flow).

    Passes (each takes and returns a program; they mutate their argument,
    so the drivers below copy first):
    - {!Simplify}: CFG cleaning — constant branches, jump threading,
      unreachable-block removal, linear-block merging.
    - {!Constfold}: block-local constant folding, constant/copy
      propagation, algebraic simplification, strength reduction.
    - {!Cse}: block-local common-subexpression elimination, including
      loads under a memory generation counter.
    - {!Dce}: liveness-based dead-code elimination.
    - {!Ifconvert}: if-conversion to predicated (guarded) instructions —
      the EPIC-specific transformation; run it only when the target
      supports predication.
    - {!Inline}: bottom-up function inlining (leaf callees that are small
      or single-use), which both removes call overhead and widens block
      scope for the scheduler.
    - {!Licm}: loop-invariant code motion to fresh preheaders (hoists
      global-address materialisation and invariant address arithmetic
      that block-local CSE cannot reach). *)

module Ir = Epic_mir.Ir
module Common = Common
module Simplify = Simplify
module Constfold = Constfold
module Cse = Cse
module Dce = Dce
module Ifconvert = Ifconvert
module Inline = Inline
module Licm = Licm

type pass = { pass_name : string; pass_run : Ir.program -> Ir.program }

let simplify = { pass_name = "simplify-cfg"; pass_run = Simplify.run }
let inline = { pass_name = "inline"; pass_run = Inline.run ?small_threshold:None ?single_site:None }

(* The scalar baseline has few registers: only tiny leaves are worth
   inlining there (mirrors how production compilers weigh inlining against
   register pressure). *)
let inline_small =
  { pass_name = "inline-small";
    pass_run = Inline.run ~small_threshold:12 ~single_site:false }
let constfold = { pass_name = "constfold"; pass_run = Constfold.run }
let cse = { pass_name = "cse"; pass_run = Cse.run }
let licm = { pass_name = "licm"; pass_run = Licm.run }
let dce = { pass_name = "dce"; pass_run = Dce.run }
let if_convert = { pass_name = "if-convert"; pass_run = Ifconvert.run ?max_insts:None }

(* Two rounds: CSE exposes copies that constfold propagates, which exposes
   dead code, which exposes further merges. *)
let cleanup_passes =
  [ simplify; constfold; cse; constfold; dce; simplify; licm;
    constfold; cse; constfold; dce; simplify ]

let standard_passes = (simplify :: inline_small :: cleanup_passes)

let epic_passes =
  (simplify :: inline :: cleanup_passes) @ [ if_convert; constfold; dce; simplify ]

let apply passes p = List.fold_left (fun p pass -> pass.pass_run p) (Common.copy_program p) passes

(** Optimise for a scalar target (no predication). *)
let standard p = apply standard_passes p

(** Optimise for the EPIC target: the standard pipeline plus
    if-conversion.  [~predication:false] disables if-conversion (the A4
    ablation). *)
let for_epic ?(predication = true) p =
  if predication then apply epic_passes p else standard p

(** No optimisation at all (still copies, so callers may mutate). *)
let none p = Common.copy_program p
