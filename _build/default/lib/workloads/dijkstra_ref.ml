(* Reference Dijkstra all-pairs shortest paths on a dense adjacency
   matrix (the paper's benchmark "finds the shortest path between every
   pair of nodes ... using Dijkstra's algorithm").  The O(n^2) unvisited-
   minimum scan matches the compiled benchmark's algorithm exactly, and a
   Floyd-Warshall cross-check is used in the test suite. *)

let inf = 0x3FFFFFFF

(* Single-source distances. *)
let single_source (adj : int array) n src =
  let dist = Array.make n inf in
  let visited = Array.make n false in
  dist.(src) <- 0;
  for _ = 0 to n - 1 do
    (* Find the unvisited node with minimal distance. *)
    let u = ref (-1) in
    let best = ref inf in
    for i = 0 to n - 1 do
      if (not visited.(i)) && dist.(i) < !best then begin
        best := dist.(i);
        u := i
      end
    done;
    if !u >= 0 then begin
      visited.(!u) <- true;
      for v = 0 to n - 1 do
        let w = adj.((!u * n) + v) in
        if w > 0 && dist.(!u) + w < dist.(v) then dist.(v) <- dist.(!u) + w
      done
    end
  done;
  dist

(* Sum of all pairwise distances, the benchmark's checksum. *)
let all_pairs_checksum (adj : int array) n =
  let cs = ref 0 in
  for s = 0 to n - 1 do
    let d = single_source adj n s in
    for t = 0 to n - 1 do
      cs := (!cs + d.(t)) land 0xFFFFFFFF
    done
  done;
  !cs

(* Independent check used by tests. *)
let floyd_warshall (adj : int array) n =
  let d = Array.make (n * n) inf in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let w = adj.((i * n) + j) in
      if i = j then d.((i * n) + j) <- 0
      else if w > 0 then d.((i * n) + j) <- w
    done
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.((i * n) + k) + d.((k * n) + j) < d.((i * n) + j) then
          d.((i * n) + j) <- d.((i * n) + k) + d.((k * n) + j)
      done
    done
  done;
  d

(* The benchmark's graph: dense, weights 1..64, zero diagonal. *)
let generate_graph prng n =
  let adj = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then adj.((i * n) + j) <- Prng.next_masked prng 0x3F + 1
    done
  done;
  adj
