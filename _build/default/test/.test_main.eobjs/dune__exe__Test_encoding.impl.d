test/test_encoding.ml: Alcotest Array Bytes Char Epic Format Int64 List Printf QCheck QCheck_alcotest
