(** The paper's four benchmarks (Section 5.2) and their infrastructure.

    - {!Sources}: EPIC-C sources, parameterised by input size, with
      expected checksums ({!Sources.benchmark} descriptors).
    - {!Prng}: the deterministic xorshift32 stream shared by the C sources
      and the references.
    - {!Sha256_ref}, {!Aes_ref}, {!Dct_ref}, {!Dijkstra_ref}: OCaml
      reference implementations used to validate compiled code. *)

module Prng = Prng
module Sha256_ref = Sha256_ref
module Aes_ref = Aes_ref
module Dct_ref = Dct_ref
module Dijkstra_ref = Dijkstra_ref
module Sources = Sources
