(* epic_explore: design-space exploration.  Sweeps ALU count (and
   optionally issue width) for a given EPIC-C program and prints the
   performance/area trade-off table the paper advocates exploring
   ("a platform for designers to explore performance/area trade-offs").
   The sweep's design points are evaluated in parallel (--jobs) through a
   shared compile cache; the printed table and Pareto frontier are
   bit-identical for every jobs value. *)

open Cmdliner

let run input max_alus sweep_issue jobs =
  Cli_common.handle_errors @@ fun () ->
  let source = Cli_common.read_file input in
  let issues = if sweep_issue then [ 1; 2; 4 ] else [ 4 ] in
  let grid =
    List.concat_map
      (fun issue ->
        List.map (fun k -> (k + 1, issue)) (List.init max_alus Fun.id))
      issues
  in
  (* Validate every candidate up front.  Invalid configurations are
     skipped, but never silently: the validation diagnostics go to
     stderr, so a sweep over a bad range is not mistaken for an empty
     design space. *)
  let valid, invalid =
    List.partition_map
      (fun (alus, issue) ->
        let cfg =
          { Epic.Config.default with Epic.Config.n_alus = alus;
            issue_width = issue }
        in
        match Epic.Config.validate cfg with
        | Ok () -> Either.Left (alus, issue, cfg)
        | Error ds -> Either.Right (alus, issue, ds))
      grid
  in
  List.iter
    (fun (alus, issue, ds) ->
      Printf.eprintf
        "warning: skipping invalid design point (%d ALU(s), %d-issue):\n" alus
        issue;
      List.iter
        (fun d -> Printf.eprintf "  %s\n" (Epic.Diag.to_string d))
        ds)
    invalid;
  let cache = Epic.Toolchain.Compile_cache.create () in
  let points =
    Cli_common.campaign ~label:"epic_explore" ~jobs
      ~caches:(fun () -> Epic.Toolchain.Compile_cache.stats cache)
      ~tasks:List.length
      (fun () ->
        Epic.Exec.Pool.map ~jobs
          (fun (alus, issue, cfg) ->
            let a = Epic.Toolchain.compile_epic ~cache cfg ~source () in
            let r = Epic.Toolchain.run_epic a in
            let area = Epic.Area.estimate cfg in
            let cycles = r.Epic.Sim.stats.Epic.Sim.cycles in
            let ms =
              float_of_int cycles /. (area.Epic.Area.clock_mhz *. 1e3)
            in
            (alus, issue, cycles, area, ms))
          valid)
  in
  Printf.printf "%5s %6s %8s %8s %8s %10s %12s\n" "ALUs" "issue" "cycles"
    "slices" "BRAMs" "MHz" "time (ms)";
  List.iter
    (fun (alus, issue, cycles, area, ms) ->
      Printf.printf "%5d %6d %8d %8d %8d %10.1f %12.3f\n" alus issue cycles
        area.Epic.Area.slices area.Epic.Area.brams area.Epic.Area.clock_mhz ms)
    points;
  (* Pareto frontier on (slices, time). *)
  let pts =
    List.map (fun (a, i, c, area, ms) -> (a, i, c, area.Epic.Area.slices, ms))
      points
  in
  let pareto =
    List.filter
      (fun (_, _, _, s, t) ->
        not
          (List.exists
             (fun (_, _, _, s', t') -> (s' < s && t' <= t) || (s' <= s && t' < t))
             pts))
      pts
  in
  Printf.printf "\nPareto-optimal designs (slices vs time):\n";
  List.iter
    (fun (alus, issue, _, s, t) ->
      Printf.printf "  %d ALU(s), %d-issue: %d slices, %.3f ms\n" alus issue s t)
    pareto

let cmd =
  let max_alus =
    Arg.(value & opt int 4 & info [ "max-alus" ] ~docv:"N" ~doc:"Sweep 1..N ALUs.")
  in
  let sweep_issue =
    Arg.(value & flag & info [ "sweep-issue" ] ~doc:"Also sweep issue widths 1, 2, 4.")
  in
  Cmd.v
    (Cmd.info "epic_explore" ~doc:"Explore performance/area trade-offs of EPIC designs")
    Term.(const run $ Cli_common.input_term $ max_alus $ sweep_issue
          $ Cli_common.jobs_term)

let () = exit (Cmd.eval cmd)
