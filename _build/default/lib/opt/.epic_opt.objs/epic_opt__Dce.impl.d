lib/opt/dce.ml: Epic_mir List
