test/test_more.ml: Alcotest Bytes Epic List Printf QCheck QCheck_alcotest Str Test_opt
