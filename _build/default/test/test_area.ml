(* FPGA resource-model tests: calibration against the paper's published
   numbers and monotonicity along the customisation axes. *)

module Area = Epic.Area
module Config = Epic.Config
module Isa = Epic.Isa

let within_pct label expected actual pct =
  let err = abs_float (float_of_int actual -. float_of_int expected) /. float_of_int expected in
  if err > pct /. 100.0 then
    Alcotest.failf "%s: got %d, paper says %d (%.2f%% off)" label actual expected (err *. 100.0)

(* Paper Section 5.1: 4181 / 6779 / 9367 / 11988 slices for 1-4 ALUs. *)
let test_paper_calibration () =
  List.iter
    (fun (alus, slices) ->
      within_pct (Printf.sprintf "%d ALUs" alus) slices
        (Area.estimate (Config.with_alus alus)).Area.slices 0.5)
    Epic.Experiments.paper_slices

let test_per_alu_increment () =
  (* "each individual ALU occupies around 2600 slices" *)
  let s n = (Area.estimate (Config.with_alus n)).Area.slices in
  List.iter
    (fun n ->
      let d = s (n + 1) - s n in
      if d < 2500 || d > 2700 then Alcotest.failf "ALU increment %d out of range" d)
    [ 1; 2; 3 ]

let test_clock_flat_in_alus () =
  (* "varying the number of ALUs has little impact on the critical path" *)
  let c n = (Area.estimate (Config.with_alus n)).Area.clock_mhz in
  Alcotest.(check (float 0.001)) "1 vs 4 ALUs" (c 1) (c 4);
  Alcotest.(check (float 0.01)) "41.8 MHz" 41.8 (c 4)

let test_register_file_in_bram () =
  (* "increasing the size of the register file has negligible effects on
     number of slices" — but it does take more block RAM. *)
  let small = Area.estimate Config.default in
  let big =
    Area.estimate
      (Config.validate_exn
         { Config.default with Config.n_gprs = 128; dst_bits = 7; issue_width = 3 })
  in
  Alcotest.(check bool) "more BRAM" true (big.Area.brams >= small.Area.brams);
  let slice_growth = abs (big.Area.slices - small.Area.slices) in
  Alcotest.(check bool) "slices nearly flat" true
    (float_of_int slice_growth /. float_of_int small.Area.slices < 0.15)

let test_omitting_div_saves_slices () =
  let base = Area.estimate Config.default in
  let nodiv =
    Area.estimate { Config.default with Config.alu_omit = [ Isa.DIV; Isa.REM ] }
  in
  let saved = base.Area.slices - nodiv.Area.slices in
  Alcotest.(check bool) "saves real area" true (saved > 4 * 1000);
  (* Four ALUs each drop the divider. *)
  Alcotest.(check bool) "scaled by ALU count" true (saved >= 4 * 1200)

let test_custom_op_costs_slices () =
  let base = Area.estimate Config.default in
  let rotr = Area.estimate (Config.add_custom Config.default "ROTR") in
  Alcotest.(check bool) "ROTR adds area" true (rotr.Area.slices > base.Area.slices);
  (* Cost applies per ALU. *)
  Alcotest.(check int) "4 x 180 slices" (4 * 180) (rotr.Area.slices - base.Area.slices)

let test_width_scaling () =
  let w32 = Area.estimate Config.default in
  let w16 = Area.estimate { Config.default with Config.width = 16 } in
  Alcotest.(check bool) "narrow datapath smaller" true
    (w16.Area.slices < w32.Area.slices);
  Alcotest.(check bool) "roughly half" true
    (float_of_int w16.Area.slices /. float_of_int w32.Area.slices < 0.65)

let test_multipliers () =
  Alcotest.(check int) "2 block mults per 32-bit ALU" 8
    (Area.estimate Config.default).Area.multipliers;
  Alcotest.(check int) "none without MPY" 0
    (Area.estimate { Config.default with Config.alu_omit = [ Isa.MPY ] }).Area.multipliers

let test_breakdown_sums () =
  let r = Area.estimate Config.default in
  let sum = List.fold_left (fun acc (_, s) -> acc + s) 0 r.Area.breakdown in
  Alcotest.(check int) "breakdown adds up" r.Area.slices sum

let prop_monotone_in_alus =
  QCheck.Test.make ~name:"slices monotone in ALU count" ~count:50
    QCheck.(int_range 1 7)
    (fun n ->
      (Area.estimate (Config.with_alus n)).Area.slices
      < (Area.estimate (Config.with_alus (n + 1))).Area.slices)

let suite =
  [
    Alcotest.test_case "paper calibration (E5)" `Quick test_paper_calibration;
    Alcotest.test_case "~2600 slices per ALU" `Quick test_per_alu_increment;
    Alcotest.test_case "clock flat in ALUs" `Quick test_clock_flat_in_alus;
    Alcotest.test_case "register file in BRAM" `Quick test_register_file_in_bram;
    Alcotest.test_case "omitting DIV saves slices" `Quick test_omitting_div_saves_slices;
    Alcotest.test_case "custom op costs slices" `Quick test_custom_op_costs_slices;
    Alcotest.test_case "width scaling" `Quick test_width_scaling;
    Alcotest.test_case "block multipliers" `Quick test_multipliers;
    Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
    QCheck_alcotest.to_alcotest prop_monotone_in_alus;
  ]
