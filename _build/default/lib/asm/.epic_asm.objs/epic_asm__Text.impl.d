lib/asm/text.ml: Aunit Epic_isa Format List String
