bin/epicsim.ml: Arg Cli_common Cmd Cmdliner Epic Format Printf Term
