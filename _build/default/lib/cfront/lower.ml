(* Lowering from the EPIC-C AST to MIR.  Performs name resolution, the
   (minimal) semantic checks the single-type language needs, and the
   translation of structured control flow to a CFG with fused
   compare-and-branch terminators.

   Intrinsics understood here (the front-end's escape hatches):
   - [__lsr(a, b)]    logical shift right ([>>] is arithmetic, int is signed)
   - [__asr(a, b)]    explicit arithmetic shift right
   - [__min(a, b)], [__max(a, b)]
   - [__ltu/__leu/__gtu/__geu(a, b)]  unsigned comparisons (0/1)
   - [__x_NAME(a, b)] custom ALU operation NAME (upper-cased), which the
     EPIC backend emits as an [X.NAME] instruction and other targets expand
     or reject.

   The lowering also performs counted-loop unrolling when requested (see
   [unrollable_for] below): [for (i = C0; i < C1; i++)] bodies without
   break/continue or writes to [i] are replicated [C1 - C0] times. *)

exception Sema_error of string * Ast.pos

let err pos fmt = Format.kasprintf (fun s -> raise (Sema_error (s, pos))) fmt

module Ir = Epic_mir.Ir

type binding =
  | Bscalar of Ir.vreg          (* local or parameter scalar *)
  | Barray_addr of Ir.vreg      (* array parameter: register holds address *)
  | Blocal_array of int * int   (* frame offset, length in words *)

type genv = {
  globals : (string * [ `Scalar | `Array of int ]) list;
  funcs : (string * int) list;  (* name -> arity *)
}

type env = {
  g : genv;
  b : Ir.Builder.t;
  unroll : int;  (* fully unroll counted loops with trip count <= this *)
  mutable scopes : (string * binding) list list;
  mutable break_labels : Ir.label list;
  continue_labels : Ir.label list ref;
}

let lookup_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest ->
      (match List.assoc_opt name scope with Some b -> Some b | None -> go rest)
  in
  go env.scopes

let bind env name binding =
  match env.scopes with
  | scope :: rest -> env.scopes <- ((name, binding) :: scope) :: rest
  | [] -> assert false

let relop_of_binop = function
  | Ast.Beq -> Some Ir.Req | Ast.Bne -> Some Ir.Rne | Ast.Blt -> Some Ir.Rlt
  | Ast.Ble -> Some Ir.Rle | Ast.Bgt -> Some Ir.Rgt | Ast.Bge -> Some Ir.Rge
  | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv | Ast.Brem | Ast.Band
  | Ast.Bor | Ast.Bxor | Ast.Bshl | Ast.Bshr | Ast.Bland | Ast.Blor -> None

let arith_of_binop = function
  | Ast.Badd -> Some Ir.Add | Ast.Bsub -> Some Ir.Sub | Ast.Bmul -> Some Ir.Mul
  | Ast.Bdiv -> Some Ir.Div | Ast.Brem -> Some Ir.Rem | Ast.Band -> Some Ir.And
  | Ast.Bor -> Some Ir.Or | Ast.Bxor -> Some Ir.Xor | Ast.Bshl -> Some Ir.Shl
  | Ast.Bshr -> Some Ir.Shra  (* int is signed: >> is arithmetic *)
  | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge
  | Ast.Bland | Ast.Blor -> None

let intrinsic_relop = function
  | "__ltu" -> Some Ir.Rltu
  | "__leu" -> Some Ir.Rleu
  | "__gtu" -> Some Ir.Rgtu
  | "__geu" -> Some Ir.Rgeu
  | _ -> None

let intrinsic_binop = function
  | "__lsr" -> Some Ir.Shr
  | "__asr" -> Some Ir.Shra
  | "__min" -> Some Ir.Min
  | "__max" -> Some Ir.Max
  | _ -> None

let custom_of_name name =
  let prefix = "__x_" in
  let lp = String.length prefix in
  if String.length name > lp && String.sub name 0 lp = prefix then
    Some (String.uppercase_ascii (String.sub name lp (String.length name - lp)))
  else None

(* Address of the value denoted by [name] when it is an array. *)
let array_base env pos name =
  match lookup_local env name with
  | Some (Barray_addr r) -> Some (Ir.Reg r)
  | Some (Blocal_array (off, _)) ->
    let d = Ir.Builder.fresh_vreg env.b in
    Ir.Builder.emit env.b (Ir.FrameAddr (d, off));
    Some (Ir.Reg d)
  | Some (Bscalar _) -> None
  | None ->
    (match List.assoc_opt name env.g.globals with
     | Some (`Array _) ->
       let d = Ir.Builder.fresh_vreg env.b in
       Ir.Builder.emit env.b (Ir.AddrOf (d, name));
       Some (Ir.Reg d)
     | Some `Scalar | None ->
       ignore pos;
       None)

let rec lower_expr env (e : Ast.expr) : Ir.operand =
  match e with
  | Ast.Eint (v, _) -> Ir.Imm v
  | Ast.Evar (name, pos) ->
    (match lookup_local env name with
     | Some (Bscalar r) -> Ir.Reg r
     | Some (Barray_addr _) | Some (Blocal_array _) ->
       (match array_base env pos name with Some o -> o | None -> assert false)
     | None ->
       (match List.assoc_opt name env.g.globals with
        | Some `Scalar ->
          let a = Ir.Builder.fresh_vreg env.b in
          Ir.Builder.emit env.b (Ir.AddrOf (a, name));
          let d = Ir.Builder.fresh_vreg env.b in
          Ir.Builder.emit env.b (Ir.Load (Ir.I32, Ir.Sx, d, Ir.Reg a, Ir.Imm 0));
          Ir.Reg d
        | Some (`Array _) ->
          (match array_base env pos name with Some o -> o | None -> assert false)
        | None -> err pos "undefined variable %s" name))
  | Ast.Eindex (name, idx, pos) ->
    let base, off = lower_index_addr env name idx pos in
    let d = Ir.Builder.fresh_vreg env.b in
    Ir.Builder.emit env.b (Ir.Load (Ir.I32, Ir.Sx, d, base, off));
    Ir.Reg d
  | Ast.Ebin ((Ast.Bland | Ast.Blor), _, _, _)
  | Ast.Ebin ((Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge), _, _, _)
    -> lower_bool_value env e
  | Ast.Ebin (op, a, b, _) ->
    let ra = lower_expr env a in
    let rb = lower_expr env b in
    let d = Ir.Builder.fresh_vreg env.b in
    (match arith_of_binop op with
     | Some o -> Ir.Builder.emit env.b (Ir.Bin (o, d, ra, rb))
     | None -> assert false);
    Ir.Reg d
  | Ast.Eun (Ast.Uneg, a, _) ->
    let ra = lower_expr env a in
    let d = Ir.Builder.fresh_vreg env.b in
    Ir.Builder.emit env.b (Ir.Bin (Ir.Sub, d, Ir.Imm 0, ra));
    Ir.Reg d
  | Ast.Eun (Ast.Unot, a, _) ->
    let ra = lower_expr env a in
    let d = Ir.Builder.fresh_vreg env.b in
    Ir.Builder.emit env.b (Ir.Bin (Ir.Xor, d, ra, Ir.Imm (-1)));
    Ir.Reg d
  | Ast.Eun (Ast.Ulnot, _, _) -> lower_bool_value env e
  | Ast.Ecall (name, args, pos) -> lower_call env name args pos ~want_value:true
  | Ast.Econd (c, a, b, _) ->
    let d = Ir.Builder.fresh_vreg env.b in
    let lt = Ir.Builder.fresh_label env.b in
    let lf = Ir.Builder.fresh_label env.b in
    let join = Ir.Builder.fresh_label env.b in
    lower_cond env c ~ltrue:lt ~lfalse:lf;
    Ir.Builder.start_block env.b lt;
    let ra = lower_expr env a in
    Ir.Builder.emit env.b (Ir.Mov (d, ra));
    Ir.Builder.seal env.b (Ir.Jmp join);
    Ir.Builder.start_block env.b lf;
    let rb = lower_expr env b in
    Ir.Builder.emit env.b (Ir.Mov (d, rb));
    Ir.Builder.seal env.b (Ir.Jmp join);
    Ir.Builder.start_block env.b join;
    Ir.Reg d

(* Comparison / logical expression used for its 0-1 value. *)
and lower_bool_value env e =
  match e with
  | Ast.Ebin (op, a, b, _) when relop_of_binop op <> None ->
    let ra = lower_expr env a in
    let rb = lower_expr env b in
    let d = Ir.Builder.fresh_vreg env.b in
    (match relop_of_binop op with
     | Some r -> Ir.Builder.emit env.b (Ir.Cmp (r, d, ra, rb))
     | None -> assert false);
    Ir.Reg d
  | Ast.Eun (Ast.Ulnot, a, _) ->
    let ra = lower_expr env a in
    let d = Ir.Builder.fresh_vreg env.b in
    Ir.Builder.emit env.b (Ir.Cmp (Ir.Req, d, ra, Ir.Imm 0));
    Ir.Reg d
  | _ ->
    (* Short-circuit operators: materialise through control flow. *)
    let d = Ir.Builder.fresh_vreg env.b in
    let lt = Ir.Builder.fresh_label env.b in
    let lf = Ir.Builder.fresh_label env.b in
    let join = Ir.Builder.fresh_label env.b in
    lower_cond env e ~ltrue:lt ~lfalse:lf;
    Ir.Builder.start_block env.b lt;
    Ir.Builder.emit env.b (Ir.Mov (d, Ir.Imm 1));
    Ir.Builder.seal env.b (Ir.Jmp join);
    Ir.Builder.start_block env.b lf;
    Ir.Builder.emit env.b (Ir.Mov (d, Ir.Imm 0));
    Ir.Builder.seal env.b (Ir.Jmp join);
    Ir.Builder.start_block env.b join;
    Ir.Reg d

and lower_index_addr env name idx pos =
  match array_base env pos name with
  | None -> err pos "%s is not an array" name
  | Some base ->
    (match idx with
     | Ast.Eint (v, _) -> (base, Ir.Imm (4 * v))
     | _ ->
       let ri = lower_expr env idx in
       let off = Ir.Builder.fresh_vreg env.b in
       Ir.Builder.emit env.b (Ir.Bin (Ir.Shl, off, ri, Ir.Imm 2));
       (base, Ir.Reg off))

and lower_call env name args pos ~want_value =
  let lower_args () = List.map (lower_expr env) args in
  match intrinsic_binop name with
  | Some op ->
    (match lower_args () with
     | [ a; b ] ->
       let d = Ir.Builder.fresh_vreg env.b in
       Ir.Builder.emit env.b (Ir.Bin (op, d, a, b));
       Ir.Reg d
     | _ -> err pos "%s expects 2 arguments" name)
  | None ->
  match intrinsic_relop name with
  | Some r ->
    (match lower_args () with
     | [ a; b ] ->
       let d = Ir.Builder.fresh_vreg env.b in
       Ir.Builder.emit env.b (Ir.Cmp (r, d, a, b));
       Ir.Reg d
     | _ -> err pos "%s expects 2 arguments" name)
  | None ->
    (match custom_of_name name with
     | Some cname ->
       (match lower_args () with
        | [ a; b ] ->
          let d = Ir.Builder.fresh_vreg env.b in
          Ir.Builder.emit env.b (Ir.Custom (cname, d, a, b));
          Ir.Reg d
        | _ -> err pos "custom operation %s expects 2 arguments" name)
     | None ->
       (match List.assoc_opt name env.g.funcs with
        | None -> err pos "call to undefined function %s" name
        | Some arity ->
          if List.length args <> arity then
            err pos "%s expects %d arguments, got %d" name arity (List.length args);
          let ras = lower_args () in
          let d = if want_value then Some (Ir.Builder.fresh_vreg env.b) else None in
          Ir.Builder.emit env.b (Ir.Call (d, name, ras));
          (match d with Some d -> Ir.Reg d | None -> Ir.Imm 0)))

and lower_cond env (e : Ast.expr) ~ltrue ~lfalse =
  match e with
  | Ast.Eint (v, _) -> Ir.Builder.seal env.b (Ir.Jmp (if v <> 0 then ltrue else lfalse))
  | Ast.Ebin (Ast.Bland, a, b, _) ->
    let mid = Ir.Builder.fresh_label env.b in
    lower_cond env a ~ltrue:mid ~lfalse;
    Ir.Builder.start_block env.b mid;
    lower_cond env b ~ltrue ~lfalse
  | Ast.Ebin (Ast.Blor, a, b, _) ->
    let mid = Ir.Builder.fresh_label env.b in
    lower_cond env a ~ltrue ~lfalse:mid;
    Ir.Builder.start_block env.b mid;
    lower_cond env b ~ltrue ~lfalse
  | Ast.Ebin (op, a, b, _) when relop_of_binop op <> None ->
    let ra = lower_expr env a in
    let rb = lower_expr env b in
    (match relop_of_binop op with
     | Some r -> Ir.Builder.seal env.b (Ir.Br (r, ra, rb, ltrue, lfalse))
     | None -> assert false)
  | Ast.Eun (Ast.Ulnot, a, _) -> lower_cond env a ~ltrue:lfalse ~lfalse:ltrue
  | _ ->
    let r = lower_expr env e in
    Ir.Builder.seal env.b (Ir.Br (Ir.Rne, r, Ir.Imm 0, ltrue, lfalse))

(* ------------------------------------------------------------------ *)
(* Loop unrolling (the IMPACT-style transformation, done where the loop
   structure is still syntactic): a [for] whose bounds and step are
   literal constants, whose induction variable is never written inside
   the body, and which contains no break/continue is emitted as [trip]
   copies of its body.  This widens basic blocks for the EPIC scheduler
   and removes branch bubbles on both targets. *)

let rec stmt_mentions_flow (s : Ast.stmt) =
  match s with
  | Ast.Sbreak _ | Ast.Scontinue _ -> true
  | Ast.Sblock ss -> List.exists stmt_mentions_flow ss
  | Ast.Sif (_, a, b, _) ->
    stmt_mentions_flow a || (match b with Some b -> stmt_mentions_flow b | None -> false)
  (* break/continue inside a nested loop bind to that loop: opaque here. *)
  | Ast.Swhile _ | Ast.Sdo _ | Ast.Sfor _ -> false
  | Ast.Sreturn _ | Ast.Sexpr _ | Ast.Sassign _ | Ast.Sdecl _ | Ast.Snop -> false

let rec stmt_touches_var name (s : Ast.stmt) =
  match s with
  | Ast.Sassign (Ast.Lvar (n, _), _, _, _) when n = name -> true
  | Ast.Sassign (_, _, _, _) -> false
  | Ast.Sdecl (n, _, _, _) when n = name -> true  (* shadowing: be safe *)
  | Ast.Sdecl _ -> false
  | Ast.Sblock ss -> List.exists (stmt_touches_var name) ss
  | Ast.Sif (_, a, b, _) ->
    stmt_touches_var name a
    || (match b with Some b -> stmt_touches_var name b | None -> false)
  | Ast.Swhile (_, b, _) -> stmt_touches_var name b
  | Ast.Sdo (b, _, _) -> stmt_touches_var name b
  | Ast.Sfor (i, _, st, b, _) ->
    (match i with Some i -> stmt_touches_var name i | None -> false)
    || (match st with Some st -> stmt_touches_var name st | None -> false)
    || stmt_touches_var name b
  | Ast.Sreturn _ | Ast.Sbreak _ | Ast.Scontinue _ | Ast.Sexpr _ | Ast.Snop -> false

let rec expr_size (e : Ast.expr) =
  match e with
  | Ast.Eint _ | Ast.Evar _ -> 1
  | Ast.Eindex (_, i, _) -> 2 + expr_size i
  | Ast.Ebin (_, a, b, _) -> 1 + expr_size a + expr_size b
  | Ast.Eun (_, a, _) -> 1 + expr_size a
  | Ast.Ecall (_, args, _) -> 3 + List.fold_left (fun a e -> a + expr_size e) 0 args
  | Ast.Econd (c, a, b, _) -> 2 + expr_size c + expr_size a + expr_size b

(* Approximate generated-code size, counting expression nodes: unrolling
   must not blow up blocks whose statements carry huge expressions (the
   hand-unrolled DCT kernels). *)
let rec stmt_size (s : Ast.stmt) =
  match s with
  | Ast.Sblock ss -> List.fold_left (fun a s -> a + stmt_size s) 0 ss
  | Ast.Sif (c, a, b, _) ->
    1 + expr_size c + stmt_size a + (match b with Some b -> stmt_size b | None -> 0)
  | Ast.Swhile (c, b, _) | Ast.Sdo (b, c, _) -> 2 + expr_size c + stmt_size b
  | Ast.Sfor (_, _, _, b, _) -> 5 + stmt_size b
  | Ast.Sreturn (Some e, _) -> 1 + expr_size e
  | Ast.Sreturn (None, _) -> 1
  | Ast.Sexpr (e, _) -> expr_size e
  | Ast.Sassign (Ast.Lvar _, _, e, _) -> 1 + expr_size e
  | Ast.Sassign (Ast.Lindex (_, i, _), _, e, _) -> 2 + expr_size i + expr_size e
  | Ast.Sdecl (_, _, Some e, _) -> 1 + expr_size e
  | Ast.Sdecl (_, _, None, _) -> 1
  | Ast.Sbreak _ | Ast.Scontinue _ | Ast.Snop -> 1

(* Recognise: for (i = C0; i < C1; i++) body / for (int i = C0; ...). *)
let unrollable_for env init cond step body =
  if env.unroll <= 1 then None
  else
    let var_and_start =
      match init with
      | Some (Ast.Sdecl (n, None, Some (Ast.Eint (c0, _)), _)) -> Some (n, c0, true)
      | Some (Ast.Sassign (Ast.Lvar (n, _), None, Ast.Eint (c0, _), _)) ->
        Some (n, c0, false)
      | _ -> None
    in
    match (var_and_start, cond, step) with
    | ( Some (n, c0, fresh),
        Some (Ast.Ebin (Ast.Blt, Ast.Evar (n', _), Ast.Eint (c1, _), _)),
        Some (Ast.Sassign (Ast.Lvar (n'', _), Some Ast.Badd, Ast.Eint (1, _), _)) )
      when n = n' && n = n'' ->
      let trip = c1 - c0 in
      if trip > 0 && trip <= env.unroll
         && (not (stmt_mentions_flow body))
         && (not (stmt_touches_var n body))
         && trip * stmt_size body <= 320
      then Some (n, c0, trip, fresh)
      else None
    | _ -> None

(* After a statement that sealed the current block (return/break/continue),
   any trailing code needs a fresh (unreachable) block; CFG simplification
   removes it later. *)
let ensure_block env =
  if not (Ir.Builder.in_block env.b) then
    Ir.Builder.start_block env.b (Ir.Builder.fresh_label env.b)

let rec lower_stmt env (s : Ast.stmt) =
  ensure_block env;
  match s with
  | Ast.Snop -> ()
  | Ast.Sblock stmts ->
    env.scopes <- [] :: env.scopes;
    List.iter (lower_stmt env) stmts;
    env.scopes <- List.tl env.scopes
  | Ast.Sexpr (Ast.Ecall (name, args, pos), _) ->
    ignore (lower_call env name args pos ~want_value:false)
  | Ast.Sexpr (e, _) -> ignore (lower_expr env e)
  | Ast.Sdecl (name, None, init, _) ->
    let r = Ir.Builder.fresh_vreg env.b in
    (match init with
     | Some e ->
       let v = lower_expr env e in
       Ir.Builder.emit env.b (Ir.Mov (r, v))
     | None -> ());
    bind env name (Bscalar r)
  | Ast.Sdecl (name, Some n, init, pos) ->
    if n <= 0 then err pos "array %s must have positive size" name;
    (match init with
     | Some _ -> err pos "local array initialisers are not supported"
     | None -> ());
    let fn = Ir.Builder.func env.b in
    let off = fn.Ir.f_frame_bytes in
    fn.Ir.f_frame_bytes <- off + (4 * n);
    bind env name (Blocal_array (off, n))
  | Ast.Sassign (lv, op, e, pos) -> lower_assign env lv op e pos
  | Ast.Sreturn (e, _) ->
    let v = match e with Some e -> lower_expr env e | None -> Ir.Imm 0 in
    Ir.Builder.seal env.b (Ir.Ret (Some v))
  | Ast.Sbreak pos ->
    (match env.break_labels with
     | l :: _ -> Ir.Builder.seal env.b (Ir.Jmp l)
     | [] -> err pos "break outside a loop")
  | Ast.Scontinue pos ->
    (match !(env.continue_labels) with
     | l :: _ -> Ir.Builder.seal env.b (Ir.Jmp l)
     | [] -> err pos "continue outside a loop")
  | Ast.Sif (c, then_, else_, _) ->
    let lt = Ir.Builder.fresh_label env.b in
    let join = Ir.Builder.fresh_label env.b in
    (match else_ with
     | None ->
       lower_cond env c ~ltrue:lt ~lfalse:join;
       Ir.Builder.start_block env.b lt;
       lower_stmt env then_;
       if Ir.Builder.in_block env.b then Ir.Builder.seal env.b (Ir.Jmp join)
     | Some else_ ->
       let lf = Ir.Builder.fresh_label env.b in
       lower_cond env c ~ltrue:lt ~lfalse:lf;
       Ir.Builder.start_block env.b lt;
       lower_stmt env then_;
       if Ir.Builder.in_block env.b then Ir.Builder.seal env.b (Ir.Jmp join);
       Ir.Builder.start_block env.b lf;
       lower_stmt env else_;
       if Ir.Builder.in_block env.b then Ir.Builder.seal env.b (Ir.Jmp join));
    Ir.Builder.start_block env.b join
  | Ast.Swhile (c, body, _) ->
    let head = Ir.Builder.fresh_label env.b in
    let lbody = Ir.Builder.fresh_label env.b in
    let exit_ = Ir.Builder.fresh_label env.b in
    Ir.Builder.seal env.b (Ir.Jmp head);
    Ir.Builder.start_block env.b head;
    lower_cond env c ~ltrue:lbody ~lfalse:exit_;
    Ir.Builder.start_block env.b lbody;
    env.break_labels <- exit_ :: env.break_labels;
    env.continue_labels := head :: !(env.continue_labels);
    lower_stmt env body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels := List.tl !(env.continue_labels);
    if Ir.Builder.in_block env.b then Ir.Builder.seal env.b (Ir.Jmp head);
    Ir.Builder.start_block env.b exit_
  | Ast.Sdo (body, c, _) ->
    let lbody = Ir.Builder.fresh_label env.b in
    let lcond = Ir.Builder.fresh_label env.b in
    let exit_ = Ir.Builder.fresh_label env.b in
    Ir.Builder.seal env.b (Ir.Jmp lbody);
    Ir.Builder.start_block env.b lbody;
    env.break_labels <- exit_ :: env.break_labels;
    env.continue_labels := lcond :: !(env.continue_labels);
    lower_stmt env body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels := List.tl !(env.continue_labels);
    if Ir.Builder.in_block env.b then Ir.Builder.seal env.b (Ir.Jmp lcond);
    Ir.Builder.start_block env.b lcond;
    lower_cond env c ~ltrue:lbody ~lfalse:exit_;
    Ir.Builder.start_block env.b exit_
  | Ast.Sfor (init, cond, step, body, _) when unrollable_for env init cond step body <> None ->
    (match unrollable_for env init cond step body with
     | Some (n, c0, trip, fresh) ->
       env.scopes <- [] :: env.scopes;
       (* Bind (or assign) the induction variable, then replicate. *)
       let iv =
         if fresh then begin
           let r = Ir.Builder.fresh_vreg env.b in
           bind env n (Bscalar r);
           r
         end
         else
           (match lookup_local env n with
            | Some (Bscalar r) -> r
            | _ ->
              (* Global or array induction variables are not unrolled. *)
              err (Ast.pos_of_expr (Ast.Evar (n, { Ast.line = 0; col = 0 })))
                "internal: unrollable loop over non-scalar %s" n)
       in
       for k = 0 to trip - 1 do
         ensure_block env;
         Ir.Builder.emit env.b (Ir.Mov (iv, Ir.Imm (c0 + k)));
         lower_stmt env body
       done;
       ensure_block env;
       Ir.Builder.emit env.b (Ir.Mov (iv, Ir.Imm (c0 + trip)));
       env.scopes <- List.tl env.scopes
     | None -> assert false)
  | Ast.Sfor (init, cond, step, body, _) ->
    env.scopes <- [] :: env.scopes;
    (match init with Some s -> lower_stmt env s | None -> ());
    let head = Ir.Builder.fresh_label env.b in
    let lbody = Ir.Builder.fresh_label env.b in
    let lstep = Ir.Builder.fresh_label env.b in
    let exit_ = Ir.Builder.fresh_label env.b in
    Ir.Builder.seal env.b (Ir.Jmp head);
    Ir.Builder.start_block env.b head;
    (match cond with
     | Some c -> lower_cond env c ~ltrue:lbody ~lfalse:exit_
     | None -> Ir.Builder.seal env.b (Ir.Jmp lbody));
    Ir.Builder.start_block env.b lbody;
    env.break_labels <- exit_ :: env.break_labels;
    env.continue_labels := lstep :: !(env.continue_labels);
    lower_stmt env body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels := List.tl !(env.continue_labels);
    if Ir.Builder.in_block env.b then Ir.Builder.seal env.b (Ir.Jmp lstep);
    Ir.Builder.start_block env.b lstep;
    (match step with Some s -> lower_stmt env s | None -> ());
    if Ir.Builder.in_block env.b then Ir.Builder.seal env.b (Ir.Jmp head);
    Ir.Builder.start_block env.b exit_;
    env.scopes <- List.tl env.scopes

and lower_assign env lv op e pos =
  match lv with
  | Ast.Lvar (name, pos) ->
    (match lookup_local env name with
     | Some (Bscalar r) ->
       (match op with
        | None ->
          let v = lower_expr env e in
          Ir.Builder.emit env.b (Ir.Mov (r, v))
        | Some aop ->
          let v = lower_expr env e in
          (match arith_of_binop aop with
           | Some o -> Ir.Builder.emit env.b (Ir.Bin (o, r, Ir.Reg r, v))
           | None -> err pos "invalid compound assignment operator"))
     | Some (Barray_addr _) | Some (Blocal_array _) ->
       err pos "cannot assign to array %s" name
     | None ->
       (match List.assoc_opt name env.g.globals with
        | Some `Scalar ->
          let a = Ir.Builder.fresh_vreg env.b in
          Ir.Builder.emit env.b (Ir.AddrOf (a, name));
          let v =
            match op with
            | None -> lower_expr env e
            | Some aop ->
              let old = Ir.Builder.fresh_vreg env.b in
              Ir.Builder.emit env.b (Ir.Load (Ir.I32, Ir.Sx, old, Ir.Reg a, Ir.Imm 0));
              let v = lower_expr env e in
              let d = Ir.Builder.fresh_vreg env.b in
              (match arith_of_binop aop with
               | Some o -> Ir.Builder.emit env.b (Ir.Bin (o, d, Ir.Reg old, v))
               | None -> err pos "invalid compound assignment operator");
              Ir.Reg d
          in
          Ir.Builder.emit env.b (Ir.Store (Ir.I32, Ir.Reg a, v))
        | Some (`Array _) -> err pos "cannot assign to array %s" name
        | None -> err pos "undefined variable %s" name))
  | Ast.Lindex (name, idx, _) ->
    let base, off = lower_index_addr env name idx pos in
    let addr = Ir.Builder.fresh_vreg env.b in
    Ir.Builder.emit env.b (Ir.Bin (Ir.Add, addr, base, off));
    let v =
      match op with
      | None -> lower_expr env e
      | Some aop ->
        let old = Ir.Builder.fresh_vreg env.b in
        Ir.Builder.emit env.b (Ir.Load (Ir.I32, Ir.Sx, old, Ir.Reg addr, Ir.Imm 0));
        let v = lower_expr env e in
        let d = Ir.Builder.fresh_vreg env.b in
        (match arith_of_binop aop with
         | Some o -> Ir.Builder.emit env.b (Ir.Bin (o, d, Ir.Reg old, v))
         | None -> err pos "invalid compound assignment operator");
        Ir.Reg d
    in
    Ir.Builder.emit env.b (Ir.Store (Ir.I32, Ir.Reg addr, v))

let lower_func ?(unroll = 1) genv (f : Ast.func) =
  let params = List.mapi (fun k _ -> k) f.Ast.fn_params in
  let b = Ir.Builder.create ~name:f.Ast.fn_name ~params in
  let env =
    { g = genv; b; unroll; scopes = [ [] ]; break_labels = [];
      continue_labels = ref [] }
  in
  List.iteri
    (fun k (p : Ast.param) ->
      if List.exists (fun (q : Ast.param) -> q.Ast.p_name = p.Ast.p_name && q != p) f.Ast.fn_params
      then err p.Ast.p_pos "duplicate parameter %s" p.Ast.p_name;
      bind env p.Ast.p_name
        (if p.Ast.p_array then Barray_addr (List.nth params k)
         else Bscalar (List.nth params k)))
    f.Ast.fn_params;
  Ir.Builder.start_block b (Ir.Builder.fresh_label b);
  List.iter (lower_stmt env) f.Ast.fn_body;
  if Ir.Builder.in_block b then Ir.Builder.seal b (Ir.Ret (Some (Ir.Imm 0)));
  Ir.Builder.func b

let lower_program ?unroll (decls : Ast.program) : Ir.program =
  let globals =
    List.filter_map (function Ast.Dglobal g -> Some g | Ast.Dfunc _ -> None) decls
  in
  let funcs =
    List.filter_map (function Ast.Dfunc f -> Some f | Ast.Dglobal _ -> None) decls
  in
  List.iter
    (fun (g : Ast.global) ->
      if List.length (List.filter (fun (h : Ast.global) -> h.Ast.gl_name = g.Ast.gl_name) globals) > 1
      then err g.Ast.gl_pos "duplicate global %s" g.Ast.gl_name;
      match g.Ast.gl_array with
      | Some n when n <= 0 -> err g.Ast.gl_pos "array %s must have positive size" g.Ast.gl_name
      | Some n when List.length g.Ast.gl_init > n ->
        err g.Ast.gl_pos "too many initialisers for %s[%d]" g.Ast.gl_name n
      | _ -> ())
    globals;
  List.iter
    (fun (f : Ast.func) ->
      if List.length (List.filter (fun (h : Ast.func) -> h.Ast.fn_name = f.Ast.fn_name) funcs) > 1
      then err f.Ast.fn_pos "duplicate function %s" f.Ast.fn_name)
    funcs;
  let genv =
    {
      globals =
        List.map
          (fun (g : Ast.global) ->
            ( g.Ast.gl_name,
              match g.Ast.gl_array with Some n -> `Array n | None -> `Scalar ))
          globals;
      funcs = List.map (fun (f : Ast.func) -> (f.Ast.fn_name, List.length f.Ast.fn_params)) funcs;
    }
  in
  let p_globals =
    List.map
      (fun (g : Ast.global) ->
        let words = match g.Ast.gl_array with Some n -> n | None -> 1 in
        { Ir.g_name = g.Ast.gl_name; g_bytes = 4 * words;
          g_init = Array.of_list g.Ast.gl_init })
      globals
  in
  { Ir.p_globals; p_funcs = List.map (lower_func ?unroll genv) funcs }
