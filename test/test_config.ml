(* Tests for the configuration header: defaults, validation against the
   instruction format, and the custom-operation registry. *)

module Config = Epic.Config
module Isa = Epic.Isa

let ok cfg =
  match Config.validate cfg with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "expected valid config, got: %s" (Epic.Diag.to_string_list ds)

let bad ?substring cfg =
  match Config.validate cfg with
  | Ok () -> Alcotest.fail "expected invalid config"
  | Error ds ->
    let m = Epic.Diag.to_string_list ds in
    (match substring with
     | Some s ->
       let contains hay needle =
         let lh = String.length hay and ln = String.length needle in
         let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
         go 0
       in
       if not (contains m s) then
         Alcotest.failf "error %S does not mention %S" m s
     | None -> ())

let test_default_matches_paper () =
  let c = Config.default in
  Alcotest.(check int) "4 ALUs" 4 c.Config.n_alus;
  Alcotest.(check int) "64 GPRs" 64 c.Config.n_gprs;
  Alcotest.(check int) "32 predicate registers" 32 c.Config.n_preds;
  Alcotest.(check int) "16 branch target registers" 16 c.Config.n_btrs;
  Alcotest.(check int) "4-issue" 4 c.Config.issue_width;
  Alcotest.(check int) "32-bit datapath" 32 c.Config.width;
  Alcotest.(check int) "64-bit instructions" 64 (Config.inst_bits c);
  Alcotest.(check (float 0.001)) "41.8 MHz" 41.8 c.Config.clock_mhz;
  Alcotest.(check int) "8 register-file ops per cycle" 8 c.Config.rf_port_budget;
  ok c

let test_alu_sweep_valid () = List.iter (fun n -> ok (Config.with_alus n)) [ 1; 2; 3; 4; 8 ]

let test_format_limits () =
  (* 64 registers is the maximum for a 6-bit destination field (paper
     Section 3.3: exceeding it requires re-designing the format). *)
  bad ~substring:"re-design" { Config.default with Config.n_gprs = 65 };
  (* Enlarging the field makes the same register count valid, but the wider
     instruction then costs fetch bandwidth: 4-issue no longer fits 4 banks. *)
  bad ~substring:"issue"
    { Config.default with Config.n_gprs = 128; dst_bits = 7 };
  ok { Config.default with Config.n_gprs = 128; dst_bits = 7; issue_width = 3 };
  bad { Config.default with Config.n_preds = 64 };
  ok { Config.default with Config.n_preds = 64; pred_bits = 6; issue_width = 3 };
  bad { Config.default with Config.n_btrs = 100 };
  bad ~substring:"issue" { Config.default with Config.issue_width = 5 };
  (* More banks buy more issue width (bandwidth constraint). *)
  ok { Config.default with Config.issue_width = 5; mem_banks = 8 };
  bad { Config.default with Config.width = 4 };
  bad { Config.default with Config.width = 64 };
  bad { Config.default with Config.n_alus = 0 };
  bad { Config.default with Config.regs_per_inst = 1 };
  bad { Config.default with Config.regs_per_inst = 5 };
  bad ~substring:"ALU-class" { Config.default with Config.alu_omit = [ Isa.PBRR ] };
  ok { Config.default with Config.alu_omit = [ Isa.DIV; Isa.REM ] }

let test_validate_exn () =
  ignore (Config.validate_exn Config.default);
  Alcotest.check_raises "invalid raises"
    (Invalid_argument
       "Epic_config: config/alus: n_alus must be >= 1 (got 0) [n_alus=0]")
    (fun () -> ignore (Config.validate_exn { Config.default with Config.n_alus = 0 }))

let test_diagnostics_collected () =
  (* Validation reports every violated constraint, each with a stable
     machine-readable code, not just the first. *)
  match
    Config.validate
      { Config.default with Config.n_alus = 0; regs_per_inst = 9; rf_port_budget = 1 }
  with
  | Ok () -> Alcotest.fail "expected invalid config"
  | Error ds ->
    let codes = List.map (fun d -> d.Epic.Diag.code) ds in
    Alcotest.(check (list string)) "all violations, in declaration order"
      [ "config/alus"; "config/regs-per-inst"; "config/rf-ports" ] codes;
    List.iter
      (fun d -> Alcotest.(check bool) "message non-empty" true (d.Epic.Diag.message <> ""))
      ds

let test_registry () =
  List.iter
    (fun name ->
      match Config.registry_find name with
      | Some _ -> ()
      | None -> Alcotest.failf "registry is missing %s" name)
    [ "ROTR"; "ROTL"; "BSWAP"; "POPCNT"; "CLZ"; "SATADD" ];
  Alcotest.(check bool) "unknown not found" true (Config.registry_find "FROB" = None)

let test_custom_semantics () =
  let cfg = Config.add_custom Config.default "ROTR" in
  let cfg = Config.add_custom cfg "BSWAP" in
  let cfg = Config.add_custom cfg "POPCNT" in
  let cfg = Config.add_custom cfg "CLZ" in
  let cfg = Config.add_custom cfg "SATADD" in
  let cfg = Config.add_custom cfg "ROTL" in
  let e name a b = Config.custom_eval cfg name a b in
  Alcotest.(check int) "rotr" 0x80000000 (e "ROTR" 1 1);
  Alcotest.(check int) "rotr 0" 0xDEADBEEF (e "ROTR" 0xDEADBEEF 0);
  Alcotest.(check int) "rotr full" 0xDEADBEEF (e "ROTR" 0xDEADBEEF 32);
  Alcotest.(check int) "rotl" 1 (e "ROTL" 0x80000000 1);
  Alcotest.(check int) "rotl inverse of rotr" 0x12345678 (e "ROTL" (e "ROTR" 0x12345678 7) 7);
  Alcotest.(check int) "bswap" 0x78563412 (e "BSWAP" 0x12345678 0);
  Alcotest.(check int) "popcnt" 32 (e "POPCNT" 0xFFFFFFFF 0);
  Alcotest.(check int) "popcnt 0" 0 (e "POPCNT" 0 0);
  Alcotest.(check int) "clz of 1" 31 (e "CLZ" 1 0);
  Alcotest.(check int) "clz of 0" 32 (e "CLZ" 0 0);
  Alcotest.(check int) "clz of msb" 0 (e "CLZ" 0x80000000 0);
  Alcotest.(check int) "satadd saturates" 0x7FFFFFFF (e "SATADD" 0x7FFFFFFF 1);
  Alcotest.(check int) "satadd negative saturates" 0x80000000
    (e "SATADD" 0x80000000 0xFFFFFFFF);
  Alcotest.(check int) "satadd normal" 5 (e "SATADD" 2 3)

let test_add_custom () =
  let cfg = Config.add_custom Config.default "ROTR" in
  Alcotest.(check bool) "present" true (Config.find_custom cfg "ROTR" <> None);
  Alcotest.(check bool) "supported" true (Config.op_supported cfg (Isa.CUSTOM "ROTR"));
  Alcotest.(check bool) "other not supported" false
    (Config.op_supported cfg (Isa.CUSTOM "ROTL"));
  (* Idempotent. *)
  let cfg2 = Config.add_custom cfg "ROTR" in
  Alcotest.(check int) "no duplicate" 1 (List.length cfg2.Config.custom_ops);
  Alcotest.check_raises "unknown raises"
    (Invalid_argument "Epic_config.add_custom: unknown custom op FROB")
    (fun () -> ignore (Config.add_custom cfg "FROB"))

let test_op_supported_omit () =
  let cfg = { Config.default with Config.alu_omit = [ Isa.DIV; Isa.REM ] } in
  Alcotest.(check bool) "div omitted" false (Config.op_supported cfg Isa.DIV);
  Alcotest.(check bool) "rem omitted" false (Config.op_supported cfg Isa.REM);
  Alcotest.(check bool) "add still there" true (Config.op_supported cfg Isa.ADD)

let test_latency_override () =
  let cfg = Config.add_custom Config.default "ROTR" in
  Alcotest.(check int) "custom latency from registry" 1
    (Config.latency cfg (Isa.CUSTOM "ROTR"));
  Alcotest.(check int) "base latency" (Isa.default_latency Isa.MPY)
    (Config.latency cfg Isa.MPY)

let test_latency_overrides () =
  let cfg =
    Config.validate_exn
      { Config.default with Config.lat_overrides = [ (Isa.MPY, 6); (Isa.ADD, 2) ] }
  in
  Alcotest.(check int) "MPY override" 6 (Config.latency cfg Isa.MPY);
  Alcotest.(check int) "ADD override" 2 (Config.latency cfg Isa.ADD);
  Alcotest.(check int) "others default" (Isa.default_latency Isa.SUB)
    (Config.latency cfg Isa.SUB);
  (* Overrides flow into the machine description and must be positive. *)
  bad { Config.default with Config.lat_overrides = [ (Isa.MPY, 0) ] }

let test_equal () =
  Alcotest.(check bool) "reflexive" true (Config.equal Config.default Config.default);
  Alcotest.(check bool) "alus differ" false
    (Config.equal Config.default (Config.with_alus 2));
  let a = Config.add_custom Config.default "ROTR" in
  let b = Config.add_custom Config.default "ROTR" in
  Alcotest.(check bool) "same customs equal" true (Config.equal a b);
  Alcotest.(check bool) "custom vs none differ" false (Config.equal a Config.default)

let prop_rotr_rotl_inverse =
  QCheck.Test.make ~name:"ROTL inverts ROTR for any width" ~count:300
    QCheck.(triple (int_range 8 32) (int_bound 0xFFFFFF) (int_bound 64))
    (fun (w, v, n) ->
      match (Config.registry_find "ROTR", Config.registry_find "ROTL") with
      | Some rotr, Some rotl ->
        let v = v land ((1 lsl w) - 1) in
        rotl.Config.cop_semantics ~width:w
          (rotr.Config.cop_semantics ~width:w v n)
          n
        = v
      | _ -> false)

let prop_popcnt_bound =
  QCheck.Test.make ~name:"POPCNT result within width" ~count:300
    QCheck.(pair (int_range 1 32) (int_bound max_int))
    (fun (w, v) ->
      match Config.registry_find "POPCNT" with
      | Some c ->
        let r = c.Config.cop_semantics ~width:w (v land ((1 lsl w) - 1)) 0 in
        r >= 0 && r <= w
      | None -> false)

let suite =
  [
    Alcotest.test_case "default matches paper" `Quick test_default_matches_paper;
    Alcotest.test_case "1-4 ALU presets valid" `Quick test_alu_sweep_valid;
    Alcotest.test_case "instruction-format limits" `Quick test_format_limits;
    Alcotest.test_case "validate_exn" `Quick test_validate_exn;
    Alcotest.test_case "diagnostics collected with codes" `Quick test_diagnostics_collected;
    Alcotest.test_case "registry contents" `Quick test_registry;
    Alcotest.test_case "custom semantics" `Quick test_custom_semantics;
    Alcotest.test_case "add_custom" `Quick test_add_custom;
    Alcotest.test_case "ALU functionality omission" `Quick test_op_supported_omit;
    Alcotest.test_case "latency lookup" `Quick test_latency_override;
    Alcotest.test_case "latency overrides" `Quick test_latency_overrides;
    Alcotest.test_case "config equality" `Quick test_equal;
    QCheck_alcotest.to_alcotest prop_rotr_rotl_inverse;
    QCheck_alcotest.to_alcotest prop_popcnt_bound;
  ]
