(* Profiler validation: the cycle attribution is conservative (every
   simulated cycle is charged to exactly one basic block, and the
   per-cause stall totals match the simulator's aggregate counters) on
   all four workloads across 1-4 ALU configurations, profiling does not
   perturb the simulation, and the Chrome trace export is well-formed. *)

module W = Epic.Workloads
module P = Epic.Profile
module T = Epic.Toolchain
module S = Epic.Sim

(* Small instances: the conservation property is per-cycle, so size only
   costs test time. *)
let benchmarks () =
  [
    W.Sources.sha_benchmark ~bytes:64 ();
    W.Sources.aes_benchmark ~iters:1 ();
    W.Sources.dct_benchmark ~width:8 ~height:8 ();
    W.Sources.dijkstra_benchmark ~nodes:8 ();
  ]

let profile_run cfg (bm : W.Sources.benchmark) ~keep_events =
  let a = T.compile_epic cfg ~source:bm.W.Sources.bm_source () in
  let r, prof = T.profile_epic ~keep_events a in
  Alcotest.(check int)
    (bm.W.Sources.bm_name ^ " checksum")
    bm.W.Sources.bm_expected r.S.ret;
  (a, r, prof)

let test_attribution_conservative () =
  List.iter
    (fun bm ->
      for alus = 1 to 4 do
        let cfg = Epic.Config.with_alus alus in
        let _, r, prof = profile_run cfg bm ~keep_events:false in
        let st = r.S.stats in
        let rp = P.report prof in
        let where = Printf.sprintf "%s/%d-alu" bm.W.Sources.bm_name alus in
        Alcotest.(check int) (where ^ ": total cycles") st.S.cycles rp.P.rp_cycles;
        Alcotest.(check int) (where ^ ": bundles") st.S.bundles rp.P.rp_bundles;
        Alcotest.(check int)
          (where ^ ": operand stalls")
          st.S.operand_stalls rp.P.rp_operand;
        Alcotest.(check int) (where ^ ": port stalls") st.S.port_stalls rp.P.rp_port;
        Alcotest.(check int)
          (where ^ ": branch bubbles")
          st.S.branch_bubbles rp.P.rp_branch;
        (* Block rows partition the cycles... *)
        let sum f rows = List.fold_left (fun acc r -> acc + f r) 0 rows in
        Alcotest.(check int)
          (where ^ ": block cycles sum")
          st.S.cycles
          (sum (fun b -> b.P.br_cycles) rp.P.rp_blocks);
        Alcotest.(check int)
          (where ^ ": block operand sum")
          st.S.operand_stalls
          (sum (fun b -> b.P.br_operand) rp.P.rp_blocks);
        Alcotest.(check int)
          (where ^ ": block port sum")
          st.S.port_stalls
          (sum (fun b -> b.P.br_port) rp.P.rp_blocks);
        Alcotest.(check int)
          (where ^ ": block branch sum")
          st.S.branch_bubbles
          (sum (fun b -> b.P.br_branch) rp.P.rp_blocks);
        (* ... and so do function self times.  The bottom of the call
           stack (_start) covers the whole run cumulatively. *)
        Alcotest.(check int)
          (where ^ ": func self sum")
          st.S.cycles
          (sum (fun f -> f.P.fr_self) rp.P.rp_funcs);
        List.iter
          (fun f ->
            if f.P.fr_cum < f.P.fr_self then
              Alcotest.failf "%s: %s cum %d < self %d" where f.P.fr_name
                f.P.fr_cum f.P.fr_self)
          rp.P.rp_funcs;
        let start =
          List.find (fun f -> f.P.fr_name = "_start") rp.P.rp_funcs
        in
        Alcotest.(check int) (where ^ ": _start cum") st.S.cycles start.P.fr_cum
      done)
    (benchmarks ())

let test_profiling_is_transparent () =
  (* Attaching the sink must not change the simulation: same return
     value, same cycle count, same stall counters. *)
  List.iter
    (fun bm ->
      let cfg = Epic.Config.with_alus 2 in
      let a = T.compile_epic cfg ~source:bm.W.Sources.bm_source () in
      let plain = T.run_epic a in
      let profiled, _ = T.profile_epic a in
      Alcotest.(check int)
        (bm.W.Sources.bm_name ^ ": ret unchanged")
        plain.S.ret profiled.S.ret;
      Alcotest.(check int)
        (bm.W.Sources.bm_name ^ ": cycles unchanged")
        plain.S.stats.S.cycles profiled.S.stats.S.cycles;
      Alcotest.(check int)
        (bm.W.Sources.bm_name ^ ": stalls unchanged")
        plain.S.stats.S.operand_stalls profiled.S.stats.S.operand_stalls)
    (benchmarks ())

let test_unit_utilisation () =
  let bm = W.Sources.sha_benchmark ~bytes:64 () in
  let cfg = Epic.Config.with_alus 4 in
  let _, r, prof = profile_run cfg bm ~keep_events:false in
  let rp = P.report prof in
  Alcotest.(check (list string))
    "unit classes"
    [ "ALU"; "LSU"; "CMPU"; "BRU" ]
    (List.map (fun u -> u.P.ur_name) rp.P.rp_units);
  List.iter
    (fun u ->
      if u.P.ur_util < 0.0 || u.P.ur_util > 1.0 then
        Alcotest.failf "%s utilisation %f out of range" u.P.ur_name u.P.ur_util;
      let bound = u.P.ur_count * r.S.stats.S.cycles in
      if u.P.ur_ops > bound then
        Alcotest.failf "%s: %d ops exceeds capacity %d" u.P.ur_name u.P.ur_ops
          bound)
    rp.P.rp_units;
  let alus = List.hd rp.P.rp_units in
  Alcotest.(check int) "ALU count" 4 alus.P.ur_count;
  Alcotest.(check bool) "ALUs did work" true (alus.P.ur_ops > 0)

(* Chrome trace golden test: the export is valid JSON (per our own
   validating parser) with the expected shape and non-decreasing
   timestamps. *)

let ts_of_event ev =
  match P.Json.member "ts" ev with
  | Some (P.Json.Int t) -> float_of_int t
  | Some (P.Json.Float t) -> t
  | _ -> Alcotest.fail "trace event without numeric ts"

let test_chrome_trace_golden () =
  let bm = W.Sources.dijkstra_benchmark ~nodes:8 () in
  let cfg = Epic.Config.with_alus 2 in
  let _, r, prof = profile_run cfg bm ~keep_events:true in
  let s = P.chrome_trace_to_string prof in
  let doc =
    match P.Json.parse s with
    | Ok doc -> doc
    | Error msg -> Alcotest.failf "chrome trace is not valid JSON: %s" msg
  in
  let events =
    match P.Json.member "traceEvents" doc with
    | Some (P.Json.List evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents list"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  let last = ref neg_infinity and depth = ref 0 in
  List.iter
    (fun ev ->
      let ph =
        match P.Json.member "ph" ev with
        | Some (P.Json.Str p) -> p
        | _ -> Alcotest.fail "trace event without ph"
      in
      if ph <> "M" then begin
        let ts = ts_of_event ev in
        if ts < !last then
          Alcotest.failf "timestamps not monotone: %f after %f" ts !last;
        last := ts;
        match ph with
        | "B" -> incr depth
        | "E" ->
          decr depth;
          if !depth < 0 then Alcotest.fail "E without matching B"
        | _ -> ()
      end)
    events;
  Alcotest.(check int) "call spans balanced" 0 !depth;
  (* The final timestamp cannot exceed the run length. *)
  Alcotest.(check bool) "ts within run" true
    (!last <= float_of_int r.S.stats.S.cycles)

let test_report_json_roundtrip () =
  let bm = W.Sources.aes_benchmark ~iters:1 () in
  let cfg = Epic.Config.default in
  let _, r, prof = profile_run cfg bm ~keep_events:false in
  let rp = P.report prof in
  let doc =
    match P.Json.parse (P.Json.to_string (P.report_to_json rp)) with
    | Ok doc -> doc
    | Error msg -> Alcotest.failf "report JSON does not reparse: %s" msg
  in
  (match P.Json.member "cycles" doc with
   | Some (P.Json.Int c) ->
     Alcotest.(check int) "cycles field" r.S.stats.S.cycles c
   | _ -> Alcotest.fail "report JSON missing cycles");
  match P.Json.member "blocks" doc with
  | Some (P.Json.List bs) ->
    Alcotest.(check int) "block rows" (List.length rp.P.rp_blocks)
      (List.length bs)
  | _ -> Alcotest.fail "report JSON missing blocks"

let suite =
  [
    Alcotest.test_case "attribution is conservative (4 workloads x 1-4 ALUs)"
      `Slow test_attribution_conservative;
    Alcotest.test_case "profiling does not perturb the run" `Quick
      test_profiling_is_transparent;
    Alcotest.test_case "functional-unit utilisation" `Quick
      test_unit_utilisation;
    Alcotest.test_case "chrome trace is valid and monotone" `Quick
      test_chrome_trace_golden;
    Alcotest.test_case "report JSON reparses" `Quick test_report_json_roundtrip;
  ]
