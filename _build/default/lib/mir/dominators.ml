(* Dominator analysis and natural-loop discovery on MIR CFGs (iterative
   set-intersection algorithm; CFGs here are small).  Used by
   loop-invariant code motion. *)

module LSet = Set.Make (Int)

type t = {
  dom : (Ir.label, LSet.t) Hashtbl.t;          (* label -> its dominators *)
  preds : (Ir.label, Ir.label list) Hashtbl.t;
}

let predecessors (f : Ir.func) =
  let preds = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace preds b.Ir.b_id []) f.Ir.f_blocks;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun s -> Hashtbl.replace preds s (b.Ir.b_id :: Hashtbl.find preds s))
        (Ir.successors b.Ir.b_term))
    f.Ir.f_blocks;
  preds

let analyse (f : Ir.func) =
  let entry = (Ir.entry_block f).Ir.b_id in
  let labels = List.map (fun (b : Ir.block) -> b.Ir.b_id) f.Ir.f_blocks in
  let all = LSet.of_list labels in
  let preds = predecessors f in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace dom l (if l = entry then LSet.singleton entry else all))
    labels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let ps = Hashtbl.find preds l in
          let inter =
            List.fold_left
              (fun acc p ->
                match acc with
                | None -> Some (Hashtbl.find dom p)
                | Some s -> Some (LSet.inter s (Hashtbl.find dom p)))
              None ps
          in
          let next =
            LSet.add l (match inter with Some s -> s | None -> LSet.empty)
          in
          if not (LSet.equal next (Hashtbl.find dom l)) then begin
            Hashtbl.replace dom l next;
            changed := true
          end
        end)
      labels
  done;
  { dom; preds }

let dominates t a b =
  match Hashtbl.find_opt t.dom b with
  | Some s -> LSet.mem a s
  | None -> false

(* Back edges: u -> h where h dominates u. *)
let back_edges t (f : Ir.func) =
  List.concat_map
    (fun (b : Ir.block) ->
      List.filter_map
        (fun s -> if dominates t s b.Ir.b_id then Some (b.Ir.b_id, s) else None)
        (Ir.successors b.Ir.b_term))
    f.Ir.f_blocks

(* The natural loop of back edge (u, h): h plus every node that reaches u
   without passing through h.  Loops sharing a header are merged. *)
type loop = { header : Ir.label; body : LSet.t }

let natural_loops t (f : Ir.func) =
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (u, h) ->
      let body = ref (LSet.of_list [ h; u ]) in
      let rec pull n =
        if not (LSet.mem n !body) then begin
          body := LSet.add n !body;
          List.iter pull (Hashtbl.find t.preds n)
        end
      in
      if u <> h then List.iter pull (Hashtbl.find t.preds u);
      let prev =
        Option.value ~default:LSet.empty (Hashtbl.find_opt by_header h)
      in
      Hashtbl.replace by_header h (LSet.union prev !body))
    (back_edges t f);
  Hashtbl.fold (fun header body acc -> { header; body } :: acc) by_header []
