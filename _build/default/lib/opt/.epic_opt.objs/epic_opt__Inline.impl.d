lib/opt/inline.ml: Epic_mir Hashtbl List Option
