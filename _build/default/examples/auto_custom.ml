(* Automatic custom-instruction generation — the paper's future work
   ("supporting automatic generation of custom instructions", Section 6)
   implemented as a profile-guided flow:

     profile -> enumerate fusable dataflow trees (<= 2 inputs, 1 output,
     constants embedded) -> rank by dynamic savings -> synthesise the
     custom operation -> rewrite the program -> extend the configuration.

   On SHA-256 the generator rediscovers the rotate instructions by itself
   (OR of SHR and SHL with embedded shift counts).

   Run with: dune exec examples/auto_custom.exe *)

module S = Epic.Workloads.Sources
module CG = Epic.Custom_gen

let () =
  let bm = S.sha_benchmark ~bytes:1024 () in
  let program = Epic.Opt.for_epic (Epic.Cfront.compile bm.S.bm_source) in

  print_endline "Top candidate instructions discovered in SHA-256:";
  List.iter
    (fun (c : CG.candidate) ->
      Printf.printf "  %-12s %-34s %d ops, %d input(s), %6d dynamic uses\n"
        c.CG.cg_name (CG.expr_to_string c.CG.cg_expr) c.CG.cg_ops c.CG.cg_inputs
        c.CG.cg_dynamic)
    (CG.identify ~top:6 program);

  (* Apply the whole flow on processors with 1, 2 and 4 ALUs: the fewer
     the ALUs, the more the fused operations pay. *)
  print_newline ();
  Printf.printf "%6s %12s %14s %9s %10s %12s\n" "ALUs" "base cyc" "specialised"
    "speedup" "slices" "(+custom)";
  List.iter
    (fun alus ->
      let cfg = Epic.Config.with_alus alus in
      let base =
        (Epic.Toolchain.epic_cycles cfg ~source:bm.S.bm_source
           ~expected:bm.S.bm_expected ())
          .Epic.Sim.cycles
      in
      match CG.specialise ~rounds:6 cfg program with
      | None -> Printf.printf "%6d: no profitable candidate\n" alus
      | Some (cfg', program', _chosen) ->
        let layout = Epic.Memmap.layout program' in
        let unit_, _ = Epic.Sched.compile_program cfg' layout program' in
        let image, _ = Epic.Asm.assemble cfg' unit_ in
        let mem = Epic.Memmap.init_memory layout program' in
        let r = Epic.Sim.run cfg' ~image ~mem () in
        assert (r.Epic.Sim.ret = bm.S.bm_expected);
        Printf.printf "%6d %12d %14d %8.2fx %10d %12d\n" alus base
          r.Epic.Sim.stats.Epic.Sim.cycles
          (float_of_int base /. float_of_int r.Epic.Sim.stats.Epic.Sim.cycles)
          (Epic.Area.estimate cfg).Epic.Area.slices
          (Epic.Area.estimate cfg').Epic.Area.slices)
    [ 1; 2; 4 ];

  print_newline ();
  print_endline
    "The generated operations are ordinary custom ops: they encode as\n\
     X.GEN_xxxxxx instructions, appear in the machine description, and\n\
     the assembler/simulator need no changes."
