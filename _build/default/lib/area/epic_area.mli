(** Analytical FPGA resource, clock and power model for the customisable
    EPIC processor, calibrated to the paper's Virtex-II results
    (Section 5.1: 4181/6779/9367/11988 slices for 1-4 ALUs at 41.8 MHz,
    ~2600 slices per ALU, register file in block RAM, multiplication in
    the block multipliers) and extended along every customisation axis:
    datapath width, issue width, omitted ALU operations, custom
    instructions and pipeline depth.

    The power model (the paper's stated future work of characterising
    performance/size/power trade-offs) charges dynamic energy per executed
    operation by unit class plus a per-fetch-slot cost, and static power
    proportional to occupied slices. *)

type report = {
  slices : int;          (** Virtex-II logic slices. *)
  brams : int;           (** 18 Kb block RAMs for the register file. *)
  multipliers : int;     (** 18x18 block multipliers. *)
  clock_mhz : float;     (** Estimated clock after customisation. *)
  breakdown : (string * int) list;  (** Component name -> slices; sums to [slices]. *)
}

val estimate : Epic_config.t -> report
(** Resource estimate for a configuration.  Calibrated within 0.2 % of the
    paper's four published design points (asserted by the test suite). *)

val pp : Format.formatter -> report -> unit

(** {1 Power} *)

type activity = {
  ac_cycles : int;
  ac_alu_ops : int;
  ac_lsu_ops : int;
  ac_cmpu_ops : int;
  ac_bru_ops : int;
  ac_nops : int;
}
(** Dynamic activity of a run, as counted by the cycle-level simulator
    (see [Epic.Experiments.activity_of_stats]). *)

type power_report = {
  pw_dynamic_mw : float;  (** Average dynamic power over the run. *)
  pw_static_mw : float;   (** Leakage, proportional to occupied slices. *)
  pw_total_mw : float;
  pw_energy_uj : float;   (** Total energy consumed by the run. *)
}

val power : Epic_config.t -> activity -> power_report
(** Plausible Virtex-II-era constants; intended for *comparing*
    configurations, not absolute accuracy. *)

val pp_power : Format.formatter -> power_report -> unit
