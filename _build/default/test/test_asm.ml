(* Assembler tests: text parse/print round-trips, label resolution to
   bundle addresses, NOP padding, directive filtering, configuration
   checking, and binary encode/decode of whole images. *)

module Isa = Epic.Isa
module Config = Epic.Config
module A = Epic.Asm.Aunit
module Text = Epic.Asm.Text

let cfg = Config.default

let sample_text =
  ";; a handwritten program exercising every syntactic form\n\
   .trimaran sim_trace on\n\
   _start:\n\
   { MOV r1, #4096 ; NOP }\n\
   { PBRR b0, @main }\n\
   { BRL r2, #0 }\n\
   { HALT }\n\
   main:\n\
   { ADD r12, r4, #-7 ; CMPP.LTU p1, p2, r4, r5 ; LDW r13, r1, #8 }\n\
   { STW r1, #2, r13 ; SUB r14, r12, r13 (p1) ; X.ROTR r15, r12, #3 }\n\
   loop:\n\
   { MPY r16, r14, r15 ; PBRR b1, @loop }\n\
   { BRCT #1, #2 ; ABS r17, r16 }\n\
   { MOV r3, r17 }\n\
   { PBRR b2, r2 }\n\
   { BRU #2 }\n"

let test_parse_sample () =
  let u = Text.of_string sample_text in
  let labels = List.filter (function A.Ilabel _ -> true | _ -> false) u.A.items in
  let bundles = List.filter (function A.Ibundle _ -> true | _ -> false) u.A.items in
  let directives = List.filter (function A.Idirective _ -> true | _ -> false) u.A.items in
  Alcotest.(check int) "labels" 3 (List.length labels);
  Alcotest.(check int) "bundles" 11 (List.length bundles);
  Alcotest.(check int) "directives" 1 (List.length directives)

let test_text_roundtrip () =
  let u = Text.of_string sample_text in
  let printed = Text.to_string u in
  let u' = Text.of_string printed in
  Alcotest.(check bool) "roundtrip" true (u = u')

let test_resolution () =
  let u = Text.of_string sample_text in
  let image = A.resolve cfg u in
  Alcotest.(check int) "_start at bundle 0" 0 (List.assoc "_start" image.A.im_symbols);
  Alcotest.(check int) "main at bundle 4" 4 (List.assoc "main" image.A.im_symbols);
  Alcotest.(check int) "loop at bundle 6" 6 (List.assoc "loop" image.A.im_symbols);
  (* PBRR b0, @main resolved to literal 4. *)
  (match image.A.im_insts.(1 * 4) with
   | { Isa.op = Isa.PBRR; src1 = Isa.Simm 4; _ } -> ()
   | i -> Alcotest.failf "bad resolution: %s" (Format.asprintf "%a" Isa.pp_inst i));
  Alcotest.(check int) "slots = bundles x width" (11 * 4)
    (Array.length image.A.im_insts)

let test_nop_padding () =
  let u = Text.of_string "main:\n{ ADD r12, r4, r5 }\n{ NOP ; NOP ; NOP ; NOP }\n" in
  let image = A.resolve cfg u in
  (* 1 real op in bundle of 4 -> 3 pads; second bundle all nops. *)
  Alcotest.(check int) "nop count" 7 (A.nop_count image)

let test_errors () =
  let expect_asm_error f =
    match f () with
    | exception A.Asm_error _ -> ()
    | _ -> Alcotest.fail "expected Asm_error"
  in
  (* Bundle wider than the issue width. *)
  expect_asm_error (fun () ->
      A.resolve cfg
        (Text.of_string "m:\n{ NOP ; NOP ; NOP ; NOP ; NOP }\n"));
  (* Duplicate and undefined labels. *)
  expect_asm_error (fun () ->
      A.resolve cfg (Text.of_string "a:\n{ NOP }\na:\n{ NOP }\n"));
  expect_asm_error (fun () ->
      A.resolve cfg (Text.of_string "a:\n{ PBRR b0, @nowhere }\n"));
  (* Configuration violations are caught at assembly. *)
  expect_asm_error (fun () ->
      ignore (Epic.Asm.assemble_text cfg "a:\n{ ADD r63, r62, r61 ; ADD r1, r1, #99999 }\n"));
  expect_asm_error (fun () ->
      ignore (Epic.Asm.assemble_text cfg "a:\n{ X.ROTR r12, r13, #1 }\n"))

let test_text_parse_errors () =
  let bad s =
    match Text.of_string s with
    | exception Text.Text_error _ -> ()
    | _ -> Alcotest.failf "expected Text_error for %S" s
  in
  bad "{ FROB r1, r2, r3 }";
  bad "{ ADD r1 }";
  bad "{ ADD r1, r2, r3 ";
  bad "just words";
  bad "{ ADD rX, r2, r3 }"

let test_directive_filtering () =
  (* Directives are kept in the unit but occupy no code space — the
     paper's assembler filters Trimaran simulator annotations. *)
  let with_dir = Text.of_string ".sim poke 1\nm:\n{ NOP }\n" in
  let without = Text.of_string "m:\n{ NOP }\n" in
  let i1 = A.resolve cfg with_dir and i2 = A.resolve cfg without in
  Alcotest.(check int) "same code size" (Array.length i2.A.im_insts)
    (Array.length i1.A.im_insts)

let test_assemble_encodes () =
  let cfg_rotr = Config.add_custom cfg "ROTR" in
  let image, words = Epic.Asm.assemble_text cfg_rotr sample_text in
  Alcotest.(check int) "one word per slot" (Array.length image.A.im_insts)
    (Array.length words);
  (* Decoding the binary gives back exactly the resolved stream. *)
  let table = Epic.Encoding.make_table cfg_rotr in
  Array.iteri
    (fun k w ->
      let i = Epic.Encoding.decode table cfg_rotr w in
      Alcotest.(check bool)
        (Printf.sprintf "slot %d" k)
        true
        (Isa.equal_inst i image.A.im_insts.(k)))
    words

let test_issue_width_respected () =
  let cfg2 = Config.validate_exn { cfg with Config.issue_width = 2 } in
  let u = Text.of_string "m:\n{ ADD r12, r4, r5 ; SUB r13, r4, r5 }\n" in
  let image = A.resolve cfg2 u in
  Alcotest.(check int) "two slots" 2 (Array.length image.A.im_insts);
  match A.resolve cfg2 (Text.of_string "m:\n{ NOP ; NOP ; NOP }\n") with
  | exception A.Asm_error _ -> ()
  | _ -> Alcotest.fail "3-op bundle must not fit issue width 2"

(* Round-trip property over generated single-instruction bundles. *)
let prop_print_parse =
  let open QCheck in
  let gen_inst =
    Gen.oneof
      [
        Gen.map2
          (fun (d, a) b -> A.simple Isa.ADD ~d1:(12 + d) ~s1:(A.Reg (12 + a)) ~s2:(A.Imm b) ())
          Gen.(pair (int_bound 40) (int_bound 40))
          Gen.(int_range (-16384) 16383);
        Gen.map
          (fun (d, g) ->
            A.simple (Isa.LD Isa.M_half) ~d1:(12 + d) ~s1:(A.Reg 1) ~s2:(A.Imm 8)
              ~g ())
          Gen.(pair (int_bound 40) (int_bound 31));
        Gen.map
          (fun l -> A.simple Isa.PBRR ~d1:3 ~s1:(A.Lab (Printf.sprintf "L%d" l)) ())
          Gen.(int_bound 99);
        Gen.map
          (fun (o, v) -> A.simple (Isa.ST Isa.M_word) ~d1:o ~s1:(A.Reg 1) ~s2:(A.Imm v) ())
          Gen.(pair (int_bound 63) (int_bound 100));
      ]
  in
  Test.make ~name:"assembly print/parse roundtrip" ~count:300
    (make ~print:(fun i -> Format.asprintf "%a" Text.pp_inst i) gen_inst)
    (fun i ->
      let u = { A.items = [ A.Ibundle [ i ] ] } in
      Text.of_string (Text.to_string u) = u)

(* The printer/parser round-trips real compiler output, not just
   hand-written samples: every scheduled benchmark unit survives
   print -> parse -> resolve identically. *)
let test_roundtrip_compiled_units () =
  List.iter
    (fun (bm : Epic.Workloads.Sources.benchmark) ->
      let a =
        Epic.Toolchain.compile_epic Config.default
          ~source:bm.Epic.Workloads.Sources.bm_source ()
      in
      let u = a.Epic.Toolchain.ea_unit in
      let u' = Text.of_string (Text.to_string u) in
      Alcotest.(check bool)
        (bm.Epic.Workloads.Sources.bm_name ^ " unit roundtrip")
        true (u = u');
      let image' = A.resolve cfg u' in
      Alcotest.(check bool)
        (bm.Epic.Workloads.Sources.bm_name ^ " image equal")
        true
        (Array.for_all2 Isa.equal_inst image'.A.im_insts
           a.Epic.Toolchain.ea_image.A.im_insts))
    (Epic.Workloads.Sources.all ~sha_bytes:64 ~aes_iters:1 ~dct_size:(8, 8)
       ~dijkstra_nodes:6 ())

let suite =
  [
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
    Alcotest.test_case "label resolution" `Quick test_resolution;
    Alcotest.test_case "nop padding" `Quick test_nop_padding;
    Alcotest.test_case "assembler errors" `Quick test_errors;
    Alcotest.test_case "text parse errors" `Quick test_text_parse_errors;
    Alcotest.test_case "directive filtering" `Quick test_directive_filtering;
    Alcotest.test_case "assemble encodes faithfully" `Quick test_assemble_encodes;
    Alcotest.test_case "issue width respected" `Quick test_issue_width_respected;
    QCheck_alcotest.to_alcotest prop_print_parse;
    Alcotest.test_case "compiled units roundtrip" `Quick test_roundtrip_compiled_units;
  ]
