examples/auto_custom.ml: Epic List Printf
