(* Wire protocol of the epicd daemon: newline-delimited JSON.

   Every request is one JSON object on one line:

     {"id": 7, "op": "compile", "config": {"alus": 2}, "workload": {"name": "sha", "bytes": 64}}

   and every response is one JSON object on one line, in request order:

     {"id": 7, "ok": true, "result": {...}}
     {"id": 7, "ok": false, "error": {"code": "serve/config", "message": "..."}}

   Work requests — compile, simulate, fault-campaign, fuzz-batch,
   explore-slice — are deterministic functions of their payload, which is
   what makes their serialised results cacheable on disk ({!Store}): the
   cache key is the configuration fingerprint x the source digest x every
   parameter that can change the result, and a hit serves byte-identical
   bytes.  Control requests — stats, shutdown — are answered immediately
   and never cached.

   Parsing is strict: unknown operations, unknown fields and ill-typed
   values are structured {!Epic.Diag} errors (codes [serve/*]), so a
   malformed client is told exactly which field is wrong. *)

module J = Epic.Profile.Json
module Config = Epic.Config
module Diag = Epic.Diag

(* ------------------------------------------------------------------ *)
(* Request types *)

type workload = {
  wl_name : string;                  (* sha | aes | dct | dijkstra *)
  wl_params : (string * int) list;   (* size parameters, sorted by name *)
}

(* Program text, given inline or named from the built-in benchmark suite
   (resolved by {!resolve_source}; small requests, shared corpus). *)
type source_spec = Src_text of string | Src_workload of workload

type compile_req = {
  c_config : Config.t;
  c_source : source_spec;
  c_opt : Epic.Toolchain.opt_level;
  c_predication : bool;
  c_unroll : int;
  c_fuel : int option;
}

type simulate_req = {
  s_config : Config.t;
  s_asm : string;
  s_fuel : int option;
  s_mem_bytes : int;
}

type fault_req = {
  fc_config : Config.t;
  fc_source : source_spec;
  fc_seed : int;
  fc_runs : int;
  fc_targets : Epic.Fault.target list;
  fc_fuel_factor : int;
}

type fuzz_req = {
  fz_seed : int;
  fz_cases : int;
  fz_kinds : Epic.Difftest.kind list;
  fz_shrink : bool;
}

type explore_req = {
  ex_source : source_spec;
  ex_alus : int list;
  ex_issues : int list;
}

type op =
  | Compile of compile_req
  | Simulate of simulate_req
  | Fault_campaign of fault_req
  | Fuzz_batch of fuzz_req
  | Explore_slice of explore_req
  | Stats
  | Shutdown

type request = {
  rq_id : int option;
  rq_deadline_ms : int option;
      (* client-requested deadline for work requests; [None] defers to
         the server default.  Never part of the cache key: a deadline
         changes whether a result is produced, not what it is. *)
  rq_op : op;
}

(* One request is one line; a line longer than this is rejected with
   [serve/oversized] before parsing, so a runaway or malicious client
   cannot balloon the daemon's memory.  The raw-fd reader enforces the
   same bound while buffering (it stops retaining bytes beyond it). *)
let max_line_bytes = 1 lsl 20

let op_name = function
  | Compile _ -> "compile"
  | Simulate _ -> "simulate"
  | Fault_campaign _ -> "fault-campaign"
  | Fuzz_batch _ -> "fuzz-batch"
  | Explore_slice _ -> "explore-slice"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let is_control = function Stats | Shutdown -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Workload resolution *)

exception Bad of Diag.t

let badf ?context ~code fmt =
  Format.kasprintf (fun m -> raise (Bad (Diag.v ?context ~code m))) fmt

let wl_param w name default = Option.value ~default (List.assoc_opt name w.wl_params)

let resolve_workload w =
  let module S = Epic.Workloads.Sources in
  let only allowed =
    List.iter
      (fun (k, _) ->
        if not (List.mem k allowed) then
          badf ~code:"serve/workload"
            "workload %s does not take parameter %S" w.wl_name k)
      w.wl_params
  in
  match w.wl_name with
  | "sha" ->
    only [ "bytes" ];
    (S.sha_benchmark ~bytes:(wl_param w "bytes" 64) ()).S.bm_source
  | "aes" ->
    only [ "iters" ];
    (S.aes_benchmark ~iters:(wl_param w "iters" 1) ()).S.bm_source
  | "dct" ->
    only [ "width"; "height" ];
    (S.dct_benchmark ~width:(wl_param w "width" 8)
       ~height:(wl_param w "height" 8) ()).S.bm_source
  | "dijkstra" ->
    only [ "nodes" ];
    (S.dijkstra_benchmark ~nodes:(wl_param w "nodes" 6) ()).S.bm_source
  | name ->
    badf ~code:"serve/workload"
      "unknown workload %S (expected sha, aes, dct, dijkstra)" name

let resolve_source = function
  | Src_text s -> s
  | Src_workload w -> resolve_workload w

(* ------------------------------------------------------------------ *)
(* JSON helpers *)

let as_int ~where = function
  | J.Int i -> i
  | _ -> badf ~code:"serve/request" "%s: expected an integer" where

let as_bool ~where = function
  | J.Bool b -> b
  | _ -> badf ~code:"serve/request" "%s: expected a boolean" where

let as_str ~where = function
  | J.Str s -> s
  | _ -> badf ~code:"serve/request" "%s: expected a string" where

let as_obj ~where = function
  | J.Obj fields -> fields
  | _ -> badf ~code:"serve/request" "%s: expected an object" where

let as_int_list ~where = function
  | J.List l -> List.map (as_int ~where) l
  | _ -> badf ~code:"serve/request" "%s: expected a list of integers" where

let as_str_list ~where = function
  | J.List l -> List.map (as_str ~where) l
  | _ -> badf ~code:"serve/request" "%s: expected a list of strings" where

(* Field cursor over one object: lookups mark fields as consumed, and
   [finish] rejects any leftovers — the strictness that turns a typo into
   a diagnostic instead of a silently ignored option. *)
type cursor = { cu_where : string; mutable cu_fields : (string * J.t) list }

let cursor ~where j = { cu_where = where; cu_fields = as_obj ~where j }

let take cu name =
  match List.assoc_opt name cu.cu_fields with
  | None -> None
  | Some v ->
    cu.cu_fields <- List.remove_assoc name cu.cu_fields;
    Some v

let take_default cu name conv default =
  match take cu name with
  | None -> default
  | Some v -> conv ~where:(cu.cu_where ^ "." ^ name) v

let finish cu =
  match cu.cu_fields with
  | [] -> ()
  | (name, _) :: _ ->
    badf ~code:"serve/request" "%s: unknown field %S" cu.cu_where name

(* ------------------------------------------------------------------ *)
(* Config parsing: a delta over the default configuration header. *)

let config_of_cursor cu =
  match take cu "config" with
  | None -> Config.default
  | Some j ->
    let c = cursor ~where:"config" j in
    let cfg =
      { Config.default with
        Config.n_alus = take_default c "alus" as_int Config.default.Config.n_alus;
        n_gprs = take_default c "gprs" as_int Config.default.Config.n_gprs;
        n_preds = take_default c "preds" as_int Config.default.Config.n_preds;
        n_btrs = take_default c "btrs" as_int Config.default.Config.n_btrs;
        issue_width =
          take_default c "issue" as_int Config.default.Config.issue_width;
        width = take_default c "width" as_int Config.default.Config.width;
        rf_port_budget =
          take_default c "rf_ports" as_int Config.default.Config.rf_port_budget;
        forwarding =
          take_default c "forwarding" as_bool Config.default.Config.forwarding;
        pipeline_stages =
          take_default c "stages" as_int Config.default.Config.pipeline_stages }
    in
    let omits = take_default c "omit" as_str_list [] in
    let cfg =
      List.fold_left
        (fun cfg o ->
          match Epic.Isa.opcode_of_string (String.uppercase_ascii o) with
          | Some op -> { cfg with Config.alu_omit = op :: cfg.Config.alu_omit }
          | None -> badf ~code:"serve/config" "config.omit: unknown operation %S" o)
        cfg omits
    in
    let customs = take_default c "custom" as_str_list [] in
    let cfg =
      List.fold_left
        (fun cfg name ->
          match Config.registry_find (String.uppercase_ascii name) with
          | Some _ -> Config.add_custom cfg (String.uppercase_ascii name)
          | None ->
            badf ~code:"serve/config" "config.custom: unknown custom operation %S"
              name)
        cfg customs
    in
    finish c;
    (match Config.validate cfg with
     | Ok () -> cfg
     | Error ds ->
       raise (Bad (Diag.v ~code:"serve/config" (Diag.to_string_list ds))))

let source_of_cursor cu =
  match (take cu "source", take cu "workload") with
  | Some _, Some _ ->
    badf ~code:"serve/request" "give either \"source\" or \"workload\", not both"
  | Some j, None -> Src_text (as_str ~where:"source" j)
  | None, Some j ->
    let c = cursor ~where:"workload" j in
    let name =
      match take c "name" with
      | Some j -> as_str ~where:"workload.name" j
      | None -> badf ~code:"serve/request" "workload: missing \"name\""
    in
    let params =
      List.map
        (fun (k, v) -> (k, as_int ~where:("workload." ^ k) v))
        c.cu_fields
    in
    c.cu_fields <- [];
    Src_workload { wl_name = name; wl_params = List.sort compare params }
  | None, None ->
    badf ~code:"serve/request" "missing program: give \"source\" or \"workload\""

(* ------------------------------------------------------------------ *)
(* Request parsing *)

let opt_of_string = function
  | "O0" -> Epic.Toolchain.O0
  | "O1" -> Epic.Toolchain.O1
  | s -> badf ~code:"serve/request" "opt: expected \"O0\" or \"O1\", got %S" s

let string_of_opt = function Epic.Toolchain.O0 -> "O0" | Epic.Toolchain.O1 -> "O1"

let targets_of_cursor cu =
  match take cu "targets" with
  | None -> Epic.Fault.all_targets
  | Some j ->
    List.map
      (fun s ->
        match Epic.Fault.target_of_string s with
        | Some t -> t
        | None ->
          badf ~code:"serve/request"
            "targets: unknown structure %S (expected gpr, pred, btr, mem, inst)" s)
      (as_str_list ~where:"targets" j)

let kinds_of_cursor cu =
  match take cu "kinds" with
  | None -> Epic.Difftest.default_kinds
  | Some j ->
    List.map
      (fun s ->
        match s with
        | "mir" -> Epic.Difftest.K_mir
        | "asm" -> Epic.Difftest.K_asm
        | "enc" -> Epic.Difftest.K_enc
        | k ->
          badf ~code:"serve/request"
            "kinds: unknown case kind %S (expected mir, asm, enc)" k)
      (as_str_list ~where:"kinds" j)

let op_of_cursor cu name =
  match name with
  | "compile" ->
    let cfg = config_of_cursor cu in
    let src = source_of_cursor cu in
    let r =
      { c_config = cfg; c_source = src;
        c_opt = take_default cu "opt"
            (fun ~where j -> opt_of_string (as_str ~where j))
            Epic.Toolchain.O1;
        c_predication = take_default cu "predication" as_bool true;
        c_unroll = take_default cu "unroll" as_int Epic.Toolchain.default_unroll;
        c_fuel = Option.map (as_int ~where:"fuel") (take cu "fuel") }
    in
    Compile r
  | "simulate" ->
    let cfg = config_of_cursor cu in
    let asm =
      match take cu "asm" with
      | Some j -> as_str ~where:"asm" j
      | None -> badf ~code:"serve/request" "simulate: missing \"asm\""
    in
    Simulate
      { s_config = cfg; s_asm = asm;
        s_fuel = Option.map (as_int ~where:"fuel") (take cu "fuel");
        s_mem_bytes = take_default cu "mem_bytes" as_int 65536 }
  | "fault-campaign" ->
    let cfg = config_of_cursor cu in
    let src = source_of_cursor cu in
    Fault_campaign
      { fc_config = cfg; fc_source = src;
        fc_seed = take_default cu "seed" as_int 1;
        fc_runs = take_default cu "runs" as_int 8;
        fc_targets = targets_of_cursor cu;
        fc_fuel_factor = take_default cu "fuel_factor" as_int 4 }
  | "fuzz-batch" ->
    Fuzz_batch
      { fz_seed = take_default cu "seed" as_int 0;
        fz_cases = take_default cu "cases" as_int 100;
        fz_kinds = kinds_of_cursor cu;
        fz_shrink = take_default cu "shrink" as_bool true }
  | "explore-slice" ->
    let src = source_of_cursor cu in
    Explore_slice
      { ex_source = src;
        ex_alus = take_default cu "alus" as_int_list [ 1; 2; 3; 4 ];
        ex_issues = take_default cu "issues" as_int_list [ 4 ] }
  | "stats" -> Stats
  | "shutdown" -> Shutdown
  | name -> badf ~code:"serve/op" "unknown operation %S" name

let request_of_json j =
  try
    let cu = cursor ~where:"request" j in
    let id = Option.map (as_int ~where:"id") (take cu "id") in
    let deadline =
      match Option.map (as_int ~where:"deadline_ms") (take cu "deadline_ms") with
      | Some ms when ms < 0 ->
        badf ~code:"serve/request" "deadline_ms: must be >= 0, got %d" ms
      | d -> d
    in
    let name =
      match take cu "op" with
      | Some j -> as_str ~where:"op" j
      | None -> badf ~code:"serve/request" "missing \"op\""
    in
    let op = op_of_cursor cu name in
    finish cu;
    Ok { rq_id = id; rq_deadline_ms = deadline; rq_op = op }
  with Bad d -> Error d

let request_of_line line =
  if String.length line > max_line_bytes then
    Error
      (Diag.v ~code:"serve/oversized"
         ~context:[ ("max_line_bytes", string_of_int max_line_bytes) ]
         (Printf.sprintf "request line exceeds the %d-byte frame limit"
            max_line_bytes))
  else
    match J.parse line with
    | Error e -> Error (Diag.v ~code:"serve/parse" ("invalid JSON: " ^ e))
    | Ok j -> request_of_json j

(* ------------------------------------------------------------------ *)
(* Request serialisation (the load generator and the round-trip tests) *)

let json_of_config cfg =
  let d = Config.default in
  let delta = ref [] in
  let int name v dv = if v <> dv then delta := (name, J.Int v) :: !delta in
  int "stages" cfg.Config.pipeline_stages d.Config.pipeline_stages;
  if cfg.Config.custom_ops <> [] then
    delta :=
      ( "custom",
        J.List
          (List.map (fun (c : Config.custom_op) -> J.Str c.Config.cop_name)
             cfg.Config.custom_ops) )
      :: !delta;
  if cfg.Config.alu_omit <> [] then
    delta :=
      ( "omit",
        J.List
          (List.rev_map (fun o -> J.Str (Epic.Isa.string_of_opcode o))
             cfg.Config.alu_omit) )
      :: !delta;
  if cfg.Config.forwarding <> d.Config.forwarding then
    delta := ("forwarding", J.Bool cfg.Config.forwarding) :: !delta;
  int "rf_ports" cfg.Config.rf_port_budget d.Config.rf_port_budget;
  int "width" cfg.Config.width d.Config.width;
  int "issue" cfg.Config.issue_width d.Config.issue_width;
  int "btrs" cfg.Config.n_btrs d.Config.n_btrs;
  int "preds" cfg.Config.n_preds d.Config.n_preds;
  int "gprs" cfg.Config.n_gprs d.Config.n_gprs;
  int "alus" cfg.Config.n_alus d.Config.n_alus;
  J.Obj !delta

let json_of_source = function
  | Src_text s -> ("source", J.Str s)
  | Src_workload w ->
    ( "workload",
      J.Obj
        (("name", J.Str w.wl_name)
         :: List.map (fun (k, v) -> (k, J.Int v)) w.wl_params) )

let to_json { rq_id; rq_deadline_ms; rq_op } =
  let id = match rq_id with None -> [] | Some i -> [ ("id", J.Int i) ] in
  let id =
    id
    @ match rq_deadline_ms with
      | None -> []
      | Some ms -> [ ("deadline_ms", J.Int ms) ]
  in
  let fields =
    match rq_op with
    | Compile c ->
      [ ("op", J.Str "compile"); ("config", json_of_config c.c_config);
        json_of_source c.c_source; ("opt", J.Str (string_of_opt c.c_opt));
        ("predication", J.Bool c.c_predication); ("unroll", J.Int c.c_unroll) ]
      @ (match c.c_fuel with None -> [] | Some f -> [ ("fuel", J.Int f) ])
    | Simulate s ->
      [ ("op", J.Str "simulate"); ("config", json_of_config s.s_config);
        ("asm", J.Str s.s_asm); ("mem_bytes", J.Int s.s_mem_bytes) ]
      @ (match s.s_fuel with None -> [] | Some f -> [ ("fuel", J.Int f) ])
    | Fault_campaign f ->
      [ ("op", J.Str "fault-campaign"); ("config", json_of_config f.fc_config);
        json_of_source f.fc_source; ("seed", J.Int f.fc_seed);
        ("runs", J.Int f.fc_runs);
        ( "targets",
          J.List
            (List.map (fun t -> J.Str (Epic.Fault.string_of_target t))
               f.fc_targets) );
        ("fuel_factor", J.Int f.fc_fuel_factor) ]
    | Fuzz_batch f ->
      [ ("op", J.Str "fuzz-batch"); ("seed", J.Int f.fz_seed);
        ("cases", J.Int f.fz_cases);
        ( "kinds",
          J.List
            (List.map (fun k -> J.Str (Epic.Difftest.string_of_kind k))
               f.fz_kinds) );
        ("shrink", J.Bool f.fz_shrink) ]
    | Explore_slice e ->
      [ ("op", J.Str "explore-slice"); json_of_source e.ex_source;
        ("alus", J.List (List.map (fun a -> J.Int a) e.ex_alus));
        ("issues", J.List (List.map (fun i -> J.Int i) e.ex_issues)) ]
    | Stats -> [ ("op", J.Str "stats") ]
    | Shutdown -> [ ("op", J.Str "shutdown") ]
  in
  J.Obj (id @ fields)

let to_line r = J.to_string (to_json r)

(* Structural equality for the round-trip tests (configurations compare
   via {!Epic.Config.equal}, which ignores custom-op closures). *)
let source_equal a b =
  match (a, b) with
  | Src_text x, Src_text y -> x = y
  | Src_workload x, Src_workload y -> x = y
  | _ -> false

let op_equal a b =
  match (a, b) with
  | Compile x, Compile y ->
    Config.equal x.c_config y.c_config
    && source_equal x.c_source y.c_source
    && x.c_opt = y.c_opt && x.c_predication = y.c_predication
    && x.c_unroll = y.c_unroll && x.c_fuel = y.c_fuel
  | Simulate x, Simulate y ->
    Config.equal x.s_config y.s_config
    && x.s_asm = y.s_asm && x.s_fuel = y.s_fuel
    && x.s_mem_bytes = y.s_mem_bytes
  | Fault_campaign x, Fault_campaign y ->
    Config.equal x.fc_config y.fc_config
    && source_equal x.fc_source y.fc_source
    && x.fc_seed = y.fc_seed && x.fc_runs = y.fc_runs
    && x.fc_targets = y.fc_targets && x.fc_fuel_factor = y.fc_fuel_factor
  | Fuzz_batch x, Fuzz_batch y -> x = y
  | Explore_slice x, Explore_slice y ->
    source_equal x.ex_source y.ex_source
    && x.ex_alus = y.ex_alus && x.ex_issues = y.ex_issues
  | Stats, Stats | Shutdown, Shutdown -> true
  | _ -> false

let request_equal a b =
  a.rq_id = b.rq_id
  && a.rq_deadline_ms = b.rq_deadline_ms
  && op_equal a.rq_op b.rq_op

(* ------------------------------------------------------------------ *)
(* Cache keys: every parameter that can change the serialised result.
   Sources are digested after workload resolution, so an inline source
   and the workload shorthand that expands to the same text share an
   entry. *)

let digest s = Digest.to_hex (Digest.string s)

let cache_key op =
  match op with
  | Stats | Shutdown -> None
  | Compile c ->
    Some
      (Printf.sprintf "compile|%s|src=%s|opt=%s|pred=%b|unroll=%d|fuel=%s"
         (Config.fingerprint c.c_config)
         (digest (resolve_source c.c_source))
         (string_of_opt c.c_opt) c.c_predication c.c_unroll
         (match c.c_fuel with None -> "-" | Some f -> string_of_int f))
  | Simulate s ->
    Some
      (Printf.sprintf "simulate|%s|asm=%s|mem=%d|fuel=%s"
         (Config.fingerprint s.s_config) (digest s.s_asm) s.s_mem_bytes
         (match s.s_fuel with None -> "-" | Some f -> string_of_int f))
  | Fault_campaign f ->
    Some
      (Printf.sprintf "fault|%s|src=%s|seed=%d|runs=%d|targets=%s|ff=%d"
         (Config.fingerprint f.fc_config)
         (digest (resolve_source f.fc_source))
         f.fc_seed f.fc_runs
         (String.concat ","
            (List.map Epic.Fault.string_of_target f.fc_targets))
         f.fc_fuel_factor)
  | Fuzz_batch f ->
    Some
      (Printf.sprintf "fuzz|seed=%d|cases=%d|kinds=%s|shrink=%b" f.fz_seed
         f.fz_cases
         (String.concat ","
            (List.map Epic.Difftest.string_of_kind f.fz_kinds))
         f.fz_shrink)
  | Explore_slice e ->
    Some
      (Printf.sprintf "explore|src=%s|alus=%s|issues=%s"
         (digest (resolve_source e.ex_source))
         (String.concat "," (List.map string_of_int e.ex_alus))
         (String.concat "," (List.map string_of_int e.ex_issues)))

(* ------------------------------------------------------------------ *)
(* Responses *)

let json_of_diag (d : Diag.t) =
  J.Obj
    [ ("code", J.Str d.Diag.code);
      ("message", J.Str d.Diag.message);
      ("context", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) d.Diag.context)) ]

let id_field = function None -> "null" | Some i -> string_of_int i

(* Responses are assembled around pre-serialised result payloads so a
   disk-cache hit never re-parses or re-prints: the cached bytes are
   spliced verbatim, which is what makes replayed responses
   byte-identical. *)
let ok_response ~id ~result =
  Printf.sprintf "{\"id\":%s,\"ok\":true,\"result\":%s}" (id_field id) result

let error_response ~id d =
  Printf.sprintf "{\"id\":%s,\"ok\":false,\"error\":%s}" (id_field id)
    (J.to_string (json_of_diag d))
