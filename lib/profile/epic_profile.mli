(** Cycle-attribution profiler and structured-trace tooling for the EPIC
    cycle-level simulator.

    A {!t} (recorder) consumes {!Epic_sim.run}'s event stream (pass
    {!sink} as the simulator's [?sink], or use
    [Epic.Toolchain.run_epic ?profile]) and attributes every simulated
    cycle to the basic block and function containing its program counter,
    using the label information already present in the assembled image.
    The attribution is conservative: the per-block totals of {!report}
    sum to the run's [stats.cycles] exactly, and the per-cause stall
    totals equal the simulator's aggregate counters.

    Function-level cumulative times come from a shadow call stack driven
    by the event stream (a taken BRL pushes; a taken branch to the
    recorded return address pops).  Every cycle is charged once to the
    "self" of the function owning its pc and once to the cumulative time
    of each {e distinct} function on the stack, so recursion never
    double-counts, [cum >= self] always holds, and the bottom frame
    ([_start]) accumulates exactly the total cycle count.  Pipeline
    refill bubbles after a call or return are charged to the block
    holding the branch, which places a call's refill in the callee's
    cumulative time (the gprof convention for call overhead). *)

(** Minimal JSON values: emitter and validating parser for the profiler's
    machine-readable dumps (no external dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val escape : string -> string
  (** JSON string-body escaping. *)

  val parse : string -> (t, string) result
  (** Parse a complete JSON document. *)

  val member : string -> t -> t option
  (** Object field lookup ([None] on non-objects and missing keys). *)
end

(** {1 Symbol table} *)

type region = {
  rg_label : string;  (** The label starting the region. *)
  rg_func : string;   (** Enclosing function (block labels are [.L<fn>_<id>]). *)
  rg_start : int;     (** First bundle index. *)
  rg_end : int;       (** One past the last bundle index. *)
}

type symtab = {
  sy_regions : region array;  (** Sorted by [rg_start], covering the image. *)
  sy_n_bundles : int;
}

val symtab_of_image : Epic_asm.Aunit.image -> symtab
(** Turn the image's resolved labels into half-open bundle regions.  A
    synthetic ["(code)"] region covers any bundles before the first
    label. *)

val func_of_label : string -> string
(** [.L<fn>_<id>] maps to [fn]; any other label names itself. *)

val region_of_pc : symtab -> int -> region
val func_of_pc : symtab -> int -> string

(** {1 Recording} *)

type t
(** A profile recorder: per-bundle cycle attribution plus (optionally) a
    compact retained event log for trace export. *)

val create : ?keep_events:bool -> Epic_config.t -> Epic_asm.Aunit.image -> t
(** [keep_events] (default false) retains the full event log, required by
    {!chrome_trace}; aggregation alone needs only O(code size) memory. *)

val sink : t -> Epic_sim.event -> unit
(** The callback to pass as {!Epic_sim.run}'s [?sink]. *)

(** {1 Reports} *)

type block_row = {
  br_label : string;
  br_func : string;
  br_start : int;
  br_end : int;
  br_cycles : int;  (** Issue cycles + stall cycles of the block's bundles. *)
  br_issues : int;
  br_operand : int;
  br_port : int;
  br_branch : int;
}

type func_row = {
  fr_name : string;
  fr_self : int;
  fr_cum : int;
  fr_calls : int;
  fr_operand : int;  (** Self stall-cycle breakdown. *)
  fr_port : int;
  fr_branch : int;
}

type unit_row = {
  ur_name : string;   (** ALU / LSU / CMPU / BRU. *)
  ur_count : int;     (** Functional units of this class. *)
  ur_ops : int;       (** Executed operations. *)
  ur_squashed : int;  (** Issued but nullified by a false guard. *)
  ur_util : float;    (** Occupancy: ops / (cycles * count). *)
}

type report = {
  rp_cycles : int;   (** Equals [stats.cycles] of the profiled run. *)
  rp_bundles : int;
  rp_operand : int;
  rp_port : int;
  rp_branch : int;
  rp_blocks : block_row list;  (** Hottest first; zero-cycle blocks omitted. *)
  rp_funcs : func_row list;    (** By cumulative cycles, descending. *)
  rp_units : unit_row list;
}

val report : t -> report
(** Aggregate the recording.  Invariants: the [br_cycles] sum over
    [rp_blocks] equals [rp_cycles]; [rp_operand]/[rp_port]/[rp_branch]
    equal the simulator's aggregate stall counters; the [fr_self] sum
    over [rp_funcs] equals [rp_cycles]. *)

val pp_report : Format.formatter -> report -> unit
(** Summary line, per-function table, per-block table with stall-cause
    breakdown, functional-unit occupancy. *)

val pp_hot : ?top:int -> t -> Format.formatter -> report -> unit
(** The [top] (default 5) hottest blocks, annotated with their scheduled
    assembly and per-bundle issue/stall counts. *)

(** {1 Machine-readable exporters} *)

val stats_to_json : Epic_sim.stats -> Json.t
(** The raw aggregate counters (plus ILP), for dashboards and the bench
    harness's [--json] dump. *)

val report_to_json : report -> Json.t

val chrome_trace : t -> (string -> unit) -> unit
(** Stream the retained event log as Chrome trace-event JSON
    (chrome://tracing, Perfetto): per-bundle "X" events named after their
    basic block, nested in "B"/"E" spans of the reconstructed call tree,
    with stalls on a second thread.  Timestamps are simulated cycles (as
    microseconds) and non-decreasing.
    @raise Invalid_argument unless created with [~keep_events:true]. *)

val chrome_trace_to_string : t -> string
val chrome_trace_to_channel : t -> out_channel -> unit
