(* Parallel campaign engine: Domain-based job pool with deterministic
   result ordering, plus a keyed memo cache for compiled artifacts.

   The pool is deliberately simple: a shared atomic counter hands out job
   indices, so idle domains keep pulling work (the load-balancing
   property of work stealing without per-domain deques — campaign jobs
   are coarse enough that the counter is never contended), and results
   are stored at their job's index.  Parallel runs are therefore
   bit-identical to sequential ones, including which exception surfaces
   when jobs fail. *)

module Json = Epic_profile.Json

let default_jobs () = Domain.recommended_domain_count ()

module Pool = struct
  let run_seq n f =
    if n = 0 then [||]
    else begin
      let results = Array.make n None in
      for i = 0 to n - 1 do
        results.(i) <- Some (f i)
      done;
      Array.map Option.get results
    end

  let run ?jobs n f =
    if n < 0 then invalid_arg "Epic_exec.Pool.run: negative job count";
    let jobs = match jobs with None -> default_jobs () | Some j -> j in
    let jobs = max 1 (min jobs n) in
    if jobs <= 1 then run_seq n f
    else begin
      let results = Array.make n None in
      let errors = Array.make n None in
      let next = Atomic.make 0 in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i with
           | v -> results.(i) <- Some v
           | exception e -> errors.(i) <- Some e);
          worker ()
        end
      in
      let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join helpers;
      (* Deterministic failure: surface the lowest-index exception, the
         one a sequential loop would have raised first. *)
      Array.iter (function Some e -> raise e | None -> ()) errors;
      Array.map Option.get results
    end

  let map ?jobs f xs =
    let a = Array.of_list xs in
    Array.to_list (run ?jobs (Array.length a) (fun i -> f a.(i)))
end

module Cache = struct
  type 'a entry =
    | In_flight
    | Ready of 'a
    | Failed of exn

  type stats = { hits : int; misses : int }

  type 'a t = {
    name : string;
    mutex : Mutex.t;
    cond : Condition.t;
    table : (string, 'a entry) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(name = "cache") () =
    { name; mutex = Mutex.create (); cond = Condition.create ();
      table = Hashtbl.create 16; hits = 0; misses = 0 }

  (* First requester computes outside the lock; everyone else blocks on
     the condition until the entry resolves.  Exceptions are memoised so
     every requester of a failing key observes the same failure. *)
  let find_or_add t key f =
    Mutex.lock t.mutex;
    let rec await () =
      match Hashtbl.find_opt t.table key with
      | Some (Ready v) ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.mutex;
        v
      | Some (Failed e) ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.mutex;
        raise e
      | Some In_flight ->
        Condition.wait t.cond t.mutex;
        await ()
      | None ->
        Hashtbl.replace t.table key In_flight;
        t.misses <- t.misses + 1;
        Mutex.unlock t.mutex;
        let resolve entry =
          Mutex.lock t.mutex;
          Hashtbl.replace t.table key entry;
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex
        in
        (match f () with
         | v -> resolve (Ready v); v
         | exception e -> resolve (Failed e); raise e)
    in
    await ()

  let stats t =
    Mutex.lock t.mutex;
    let s = { hits = t.hits; misses = t.misses } in
    Mutex.unlock t.mutex;
    s

  let name t = t.name

  let length t =
    Mutex.lock t.mutex;
    let n = Hashtbl.length t.table in
    Mutex.unlock t.mutex;
    n

  let reset t =
    Mutex.lock t.mutex;
    Hashtbl.reset t.table;
    t.hits <- 0;
    t.misses <- 0;
    Mutex.unlock t.mutex

  let snapshot = stats

  let reset_stats t =
    Mutex.lock t.mutex;
    t.hits <- 0;
    t.misses <- 0;
    Mutex.unlock t.mutex

  let hit_rate (s : stats) =
    let total = s.hits + s.misses in
    if total = 0 then 0. else float_of_int s.hits /. float_of_int total

  let stats_to_json (s : stats) =
    Json.Obj [ ("hits", Json.Int s.hits); ("misses", Json.Int s.misses) ]
end

(* ------------------------------------------------------------------ *)
(* Persistent worker pool.

   Pool.run spawns domains per call, which is right for campaigns (one
   big fan-out, then done) but wrong for a server: a long-lived daemon
   dispatching small batches would pay domain startup on every batch.
   Workq keeps [jobs] domains alive for the lifetime of the queue; any
   thread may submit thunks, and idle workers pick them up in FIFO
   order.  Completion is the submitter's business (the thunk writes to
   a completion cell and signals its own condition variable), which is
   what lets one queue serve many independent submitters — the
   concurrent daemon's connections — without the queue knowing about
   response routing. *)

module Workq = struct
  type t = {
    mu : Mutex.t;
    cond : Condition.t;          (* a task arrived, or stop was set *)
    tasks : (unit -> unit) Queue.t;
    mutable stop : bool;
    mutable live : int;          (* submitted, not yet finished *)
    mutable workers : unit Domain.t list;
  }

  let rec worker t =
    Mutex.lock t.mu;
    while Queue.is_empty t.tasks && not t.stop do
      Condition.wait t.cond t.mu
    done;
    if Queue.is_empty t.tasks then Mutex.unlock t.mu (* stop, queue drained *)
    else begin
      let task = Queue.pop t.tasks in
      Mutex.unlock t.mu;
      (* A task must handle its own exceptions (the daemon's tasks
         resolve their completion cell with the exception); a raise
         escaping here would silently kill a worker, so the last-resort
         catch keeps the pool at full strength no matter what. *)
      (try task () with _ -> ());
      Mutex.lock t.mu;
      t.live <- t.live - 1;
      Mutex.unlock t.mu;
      worker t
    end

  let create ?jobs () =
    let jobs = match jobs with None -> default_jobs () | Some j -> j in
    if jobs < 1 then invalid_arg "Epic_exec.Workq.create: jobs must be >= 1";
    let t =
      { mu = Mutex.create (); cond = Condition.create ();
        tasks = Queue.create (); stop = false; live = 0; workers = [] }
    in
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let submit t task =
    Mutex.lock t.mu;
    if t.stop then begin
      Mutex.unlock t.mu;
      invalid_arg "Epic_exec.Workq.submit: queue is shut down"
    end;
    t.live <- t.live + 1;
    Queue.push task t.tasks;
    Condition.signal t.cond;
    Mutex.unlock t.mu

  let live t =
    Mutex.lock t.mu;
    let n = t.live in
    Mutex.unlock t.mu;
    n

  (* Graceful: pending tasks still run; workers exit once the queue is
     empty. *)
  let shutdown t =
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    List.iter Domain.join t.workers
end

(* ------------------------------------------------------------------ *)
(* Campaign reporting.                                                 *)

type campaign_stats = {
  cs_label : string;
  cs_jobs : int;
  cs_tasks : int;
  cs_wall_s : float;
  cs_caches : (string * Cache.stats) list;
  cs_notes : (string * int) list;
}

let now () = Unix.gettimeofday ()

let pp_campaign_stats ppf cs =
  Format.fprintf ppf "%s: %d jobs on %d domain%s in %.2fs" cs.cs_label
    cs.cs_tasks cs.cs_jobs
    (if cs.cs_jobs = 1 then "" else "s")
    cs.cs_wall_s;
  List.iter
    (fun (name, (s : Cache.stats)) ->
      Format.fprintf ppf "; %s %d/%d hits" name s.Cache.hits
        (s.Cache.hits + s.Cache.misses))
    cs.cs_caches;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "; %s %d" name v)
    cs.cs_notes

(* The stats-on-stderr convention in one place: stdout stays
   byte-identical across --jobs values; wall time and cache traffic go
   to stderr.  Cache counters are read after [f] so a campaign's own
   compiles are included. *)
let run_campaign ?(quiet = false) ~label ~jobs ?caches ?(notes = fun _ -> [])
    ~tasks f =
  let t0 = now () in
  let result = f () in
  let cs =
    { cs_label = label; cs_jobs = jobs; cs_tasks = tasks result;
      cs_wall_s = now () -. t0;
      cs_caches = (match caches with None -> [] | Some g -> g ());
      cs_notes = notes result }
  in
  if not quiet then Format.eprintf "%a@." pp_campaign_stats cs;
  (result, cs)

let campaign_stats_to_json cs =
  Json.Obj
    [ ("label", Json.Str cs.cs_label);
      ("jobs", Json.Int cs.cs_jobs);
      ("tasks", Json.Int cs.cs_tasks);
      ("wall_seconds", Json.Float cs.cs_wall_s);
      ( "caches",
        Json.Obj
          (List.map
             (fun (name, s) -> (name, Cache.stats_to_json s))
             cs.cs_caches) );
      ( "notes",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) cs.cs_notes) ) ]

(* ------------------------------------------------------------------ *)
(* Retry backoff *)

module Backoff = struct
  (* Deterministic exponential backoff: clients that retry a shed or
     timed-out request must not retry in lockstep (they would overload
     the server again at the same instant), yet campaign tools must stay
     reproducible.  The jitter is therefore a pure function of
     (seed, key, attempt) — splitmix-style integer mixing — so a seeded
     run always sleeps the same amounts, while distinct request keys
     spread out within each attempt's window. *)

  let mix seed key attempt =
    let h = ref (seed lxor (key * 0x9e3779b9) lxor (attempt * 0x85ebca6b)) in
    h := !h lxor (!h lsr 16);
    h := !h * 0x21f0aaad land max_int;
    h := !h lxor (!h lsr 15);
    h := !h * 0x735a2d97 land max_int;
    h := !h lxor (!h lsr 15);
    !h land max_int

  let delay_ms ?(base_ms = 25.) ?(cap_ms = 2_000.) ~seed ~key ~attempt () =
    if attempt < 1 then 0.
    else
      let window = Float.min cap_ms (base_ms *. Float.pow 2. (float_of_int (attempt - 1))) in
      (* Full jitter: uniform in (0, window], never 0 so a retry always
         yields the CPU to the server at least briefly. *)
      let u =
        float_of_int (1 + (mix seed key attempt mod 1_000_000)) /. 1_000_000.
      in
      window *. u
end
