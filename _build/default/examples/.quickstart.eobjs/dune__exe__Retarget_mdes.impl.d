examples/retarget_mdes.ml: Epic Printf
