lib/core/experiments.ml: Custom_gen Epic_area Epic_arm Epic_asm Epic_cfront Epic_config Epic_mir Epic_opt Epic_sched Epic_sim Epic_workloads List Printf Toolchain
