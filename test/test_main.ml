let () =
  Alcotest.run "epic"
    [
      ("isa", Test_isa.suite);
      ("config", Test_config.suite);
      ("encoding", Test_encoding.suite);
      ("cfront", Test_cfront.suite);
      ("mir", Test_mir.suite);
      ("workloads", Test_workloads.suite);
      ("opt", Test_opt.suite);
      ("pipeline", Test_pipeline.suite);
      ("mdes", Test_mdes.suite);
      ("area", Test_area.suite);
      ("asm", Test_asm.suite);
      ("backend", Test_backend.suite);
      ("extensions", Test_extensions.suite);
      ("more", Test_more.suite);
      ("fault", Test_fault.suite);
      ("profile", Test_profile.suite);
      ("exec", Test_exec.suite);
      ("difftest", Test_difftest.suite);
      ("serve", Test_serve.suite);
      ("engine", Test_engine.suite);
      ("explore", Test_explore.suite);
    ]
