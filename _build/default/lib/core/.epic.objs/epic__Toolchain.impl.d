lib/core/toolchain.ml: Epic_arm Epic_asm Epic_cfront Epic_config Epic_mir Epic_opt Epic_sched Epic_sim List Printf
